package experiment

import (
	"honestplayer/internal/stats"
)

// ThresholdConfig parameterises the Fig. 8 experiment: how the calibrated
// 95 %-confidence distribution-distance threshold ε shrinks (converges) as
// the initial history size grows.
type ThresholdConfig struct {
	// HistorySizes is the x axis in transactions; nil means
	// {100, 200, …, 2000}.
	HistorySizes []int
	// PHats are the estimated trustworthiness values to calibrate at; nil
	// means {0.90, 0.95}.
	PHats []float64
	// WindowSize is m; zero means 10.
	WindowSize int
	// Replicates is the Monte-Carlo sample-set count; zero means 1000 (the
	// paper's "reasonably large" number).
	Replicates int
	// Seed drives the calibration streams.
	Seed uint64
}

func (c ThresholdConfig) withDefaults() ThresholdConfig {
	if c.HistorySizes == nil {
		for n := 100; n <= 2000; n += 100 {
			c.HistorySizes = append(c.HistorySizes, n)
		}
	}
	if c.PHats == nil {
		c.PHats = []float64{0.90, 0.95}
	}
	if c.WindowSize == 0 {
		c.WindowSize = DefaultWindowSize
	}
	if c.Replicates == 0 {
		c.Replicates = stats.DefaultReplicates
	}
	return c
}

// RunFig8 regenerates Fig. 8: distribution distance (the 95 % threshold ε)
// vs. initial history size, showing the fast convergence the paper reports.
func RunFig8(cfg ThresholdConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{
		ID:     "fig8",
		Title:  "Distribution distance vs. initial history size",
		XLabel: "initial history size",
		YLabel: "95% distance threshold (epsilon)",
	}
	for _, p := range cfg.PHats {
		series := Series{Name: formatFloat(p)}
		for _, n := range cfg.HistorySizes {
			windows := n / cfg.WindowSize
			if windows < 1 {
				continue
			}
			eps, err := stats.CalibrateL1(cfg.WindowSize, windows, p, stats.CalibrationConfig{
				Seed:       cfg.Seed,
				Replicates: cfg.Replicates,
			})
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, Point{X: float64(n), Y: eps})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}
