package sim

import (
	"errors"
	"fmt"
	"time"

	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// ServerKind classifies a simulated service provider.
type ServerKind int

const (
	// Honest providers deliver good service with probability P.
	Honest ServerKind = iota + 1
	// Hibernating providers behave honestly for PrepLen transactions, then
	// always cheat (§3's hibernating attack).
	Hibernating
	// Periodic providers cheat on a fixed fraction of transactions within
	// every attack window (§3's periodic attack).
	Periodic
	// Colluding providers always cheat real clients and inject fake
	// positive feedback from a colluder ring every step (§4's threat).
	Colluding
)

// String implements fmt.Stringer.
func (k ServerKind) String() string {
	switch k {
	case Honest:
		return "honest"
	case Hibernating:
		return "hibernating"
	case Periodic:
		return "periodic"
	case Colluding:
		return "colluding"
	default:
		return fmt.Sprintf("ServerKind(%d)", int(k))
	}
}

// ServerSpec describes one provider in a scenario.
type ServerSpec struct {
	// ID is the provider's identity.
	ID feedback.EntityID
	// Kind selects the behaviour model.
	Kind ServerKind
	// P is the service quality of the honest phase (all kinds).
	P float64
	// PrepLen is the honest preparation length for Hibernating providers.
	PrepLen int
	// AttackWindow and BadFrac shape Periodic providers: ⌈window·frac⌉ bad
	// transactions per window of AttackWindow transactions.
	AttackWindow int
	BadFrac      float64
	// Colluders is the ring size for Colluding providers.
	Colluders int
}

func (s ServerSpec) validate() error {
	if s.ID == "" {
		return errors.New("sim: server spec without ID")
	}
	if s.P < 0 || s.P > 1 {
		return fmt.Errorf("sim: server %s P=%v", s.ID, s.P)
	}
	switch s.Kind {
	case Honest:
	case Hibernating:
		if s.PrepLen < 0 {
			return fmt.Errorf("sim: server %s PrepLen=%d", s.ID, s.PrepLen)
		}
	case Periodic:
		if s.AttackWindow < 1 || s.BadFrac < 0 || s.BadFrac > 1 {
			return fmt.Errorf("sim: server %s window=%d badFrac=%v", s.ID, s.AttackWindow, s.BadFrac)
		}
	case Colluding:
		if s.Colluders < 1 {
			return fmt.Errorf("sim: server %s colluders=%d", s.ID, s.Colluders)
		}
	default:
		return fmt.Errorf("sim: server %s unknown kind %d", s.ID, int(s.Kind))
	}
	return nil
}

// Config describes a marketplace scenario.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Steps is the number of client service requests to simulate.
	Steps int
	// Clients is the number of distinct clients issuing requests.
	Clients int
	// Threshold is the clients' trust threshold.
	Threshold float64
	// Servers are the competing providers.
	Servers []ServerSpec
	// Warmup transactions are granted to every server before assessment
	// starts, so new servers can build an assessable history (the paper's
	// remark on short histories, §7). Zero means 100.
	Warmup int
}

// ServerMetrics aggregates per-provider outcomes. Transactions and
// BadServed cover only the assessed phase; the unassessed warmup phase is
// reported separately so harm comparisons between policies are not diluted
// by identical warmup noise.
type ServerMetrics struct {
	Kind               ServerKind `json:"kind"`
	Transactions       int        `json:"transactions"`
	BadServed          int        `json:"badServed"`
	Flagged            int        `json:"flagged"`      // times phase 1 reported it suspicious
	FakeFeedback       int        `json:"fakeFeedback"` // colluder fakes injected
	WarmupTransactions int        `json:"warmupTransactions"`
	WarmupBad          int        `json:"warmupBad"`
}

// Metrics aggregates a scenario run.
type Metrics struct {
	Transactions int                                     `json:"transactions"`
	BadServed    int                                     `json:"badServed"`
	WarmupBad    int                                     `json:"warmupBad"`
	NoProvider   int                                     `json:"noProvider"`
	PerServer    map[feedback.EntityID]ServerMetrics     `json:"perServer"`
	Histories    map[feedback.EntityID]*feedback.History `json:"-"`
}

// serverState is the mutable runtime of one provider.
type serverState struct {
	spec    ServerSpec
	history *feedback.History
	served  int
}

// outcome produces the provider's next transaction quality.
func (s *serverState) outcome(rng *stats.RNG) bool {
	defer func() { s.served++ }()
	switch s.spec.Kind {
	case Colluding:
		return false // real clients are always cheated; fakes come separately
	case Hibernating:
		if s.served >= s.spec.PrepLen {
			return false
		}
		return rng.Bernoulli(s.spec.P)
	case Periodic:
		bad := int(float64(s.spec.AttackWindow)*s.spec.BadFrac + 0.999999)
		if s.served%s.spec.AttackWindow < bad {
			return false
		}
		return rng.Bernoulli(s.spec.P)
	default:
		return rng.Bernoulli(s.spec.P)
	}
}

// Run simulates the marketplace: at each step one client requests a
// service, assesses every provider with the given assessor, and transacts
// with the acceptable provider of highest trust (ties broken at random).
// The transaction outcome is produced by the provider's behaviour model and
// fed back into its history.
func Run(cfg Config, assessor *core.TwoPhase) (*Metrics, error) {
	if assessor == nil {
		return nil, errors.New("sim: nil assessor")
	}
	if cfg.Steps < 0 || cfg.Clients < 1 || cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("sim: steps=%d clients=%d threshold=%v", cfg.Steps, cfg.Clients, cfg.Threshold)
	}
	if len(cfg.Servers) == 0 {
		return nil, errors.New("sim: no servers")
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 100
	}
	rng := stats.NewRNG(cfg.Seed)
	states := make([]*serverState, 0, len(cfg.Servers))
	for _, spec := range cfg.Servers {
		if err := spec.validate(); err != nil {
			return nil, err
		}
		states = append(states, &serverState{spec: spec, history: feedback.NewHistory(spec.ID)})
	}

	m := &Metrics{
		PerServer: make(map[feedback.EntityID]ServerMetrics, len(states)),
		Histories: make(map[feedback.EntityID]*feedback.History, len(states)),
	}
	for _, st := range states {
		m.PerServer[st.spec.ID] = ServerMetrics{Kind: st.spec.Kind}
		m.Histories[st.spec.ID] = st.history
	}

	clock := 0
	transact := func(st *serverState, client feedback.EntityID, warmup bool) error {
		good := st.outcome(rng)
		if err := st.history.AppendOutcome(client, good, time.Unix(int64(clock), 0).UTC()); err != nil {
			return err
		}
		clock++
		sm := m.PerServer[st.spec.ID]
		if warmup {
			sm.WarmupTransactions++
			if !good {
				sm.WarmupBad++
				m.WarmupBad++
			}
		} else {
			sm.Transactions++
			m.Transactions++
			if !good {
				sm.BadServed++
				m.BadServed++
			}
		}
		m.PerServer[st.spec.ID] = sm
		return nil
	}

	// Warmup: every provider builds cfg.Warmup transactions unassessed.
	// Colluding providers prep entirely through their ring, as in §5.2 —
	// the whole point is that their preparation costs nothing real.
	for _, st := range states {
		for i := 0; i < cfg.Warmup; i++ {
			if st.spec.Kind == Colluding {
				colluder := feedback.EntityID(fmt.Sprintf("%s-ring-%d", st.spec.ID, rng.Intn(st.spec.Colluders)))
				if err := st.history.AppendOutcome(colluder, rng.Bernoulli(st.spec.P), time.Unix(int64(clock), 0).UTC()); err != nil {
					return nil, err
				}
				clock++
				sm := m.PerServer[st.spec.ID]
				sm.WarmupTransactions++
				sm.FakeFeedback++
				m.PerServer[st.spec.ID] = sm
				continue
			}
			client := feedback.EntityID(fmt.Sprintf("client-%d", rng.Intn(cfg.Clients)))
			if err := transact(st, client, true); err != nil {
				return nil, err
			}
		}
	}

	for step := 0; step < cfg.Steps; step++ {
		// Colluding providers inject one fake positive per step, keeping
		// their ratio high without serving anyone.
		for _, st := range states {
			if st.spec.Kind != Colluding {
				continue
			}
			colluder := feedback.EntityID(fmt.Sprintf("%s-ring-%d", st.spec.ID, rng.Intn(st.spec.Colluders)))
			if err := st.history.AppendOutcome(colluder, true, time.Unix(int64(clock), 0).UTC()); err != nil {
				return nil, err
			}
			clock++
			sm := m.PerServer[st.spec.ID]
			sm.FakeFeedback++
			m.PerServer[st.spec.ID] = sm
		}
		client := feedback.EntityID(fmt.Sprintf("client-%d", rng.Intn(cfg.Clients)))
		var (
			best      *serverState
			bestTrust float64
		)
		for _, st := range states {
			ok, a, err := assessor.Accept(st.history, cfg.Threshold)
			if err != nil {
				return nil, fmt.Errorf("assess %s: %w", st.spec.ID, err)
			}
			if a.Suspicious {
				sm := m.PerServer[st.spec.ID]
				sm.Flagged++
				m.PerServer[st.spec.ID] = sm
			}
			if !ok {
				continue
			}
			if best == nil || a.Trust > bestTrust || (a.Trust == bestTrust && rng.Bernoulli(0.5)) {
				best, bestTrust = st, a.Trust
			}
		}
		if best == nil {
			m.NoProvider++
			continue
		}
		if err := transact(best, client, false); err != nil {
			return nil, err
		}
	}
	return m, nil
}
