// Cluster forwarding payloads (protocol v2 types 18–27, JSON on v1).
//
// These messages are exchanged only between trustd nodes of one cluster,
// over the same connections and framings clients use. The fwd.* payloads
// have binary codecs (see binary.go): a forwarded assessment carries the
// full per-suffix verdict table, far too hot for JSON at large histories.
// The cold cluster.info pair rides v2 as JSON via flagJSONPayload.
package wire

import "honestplayer/internal/feedback"

// FwdAssessRequest asks a peer node for its local assessment of a server.
// The receiving node answers strictly from local state: it never forwards
// again, never consults its assess cache for another node's view, and
// reports its local history length so the caller can weight the merge.
type FwdAssessRequest struct {
	// Node identifies the requesting node (for logs and loop diagnosis).
	Node      string            `json:"node"`
	Server    feedback.EntityID `json:"server"`
	Threshold float64           `json:"threshold"`
	// DigestOnly asks for the node's state digest (Records, Version, XOR)
	// without computing an assessment. Forwarding nodes use it to verify
	// replica agreement in O(1) before trusting a single full assessment.
	DigestOnly bool `json:"digest_only,omitempty"`
}

// NodeAssessment is one node's local view of a server, the unit the
// cluster merge operates on (cluster.Merge).
type NodeAssessment struct {
	// Node is the answering node's ID.
	Node string `json:"node"`
	// Records is the answering node's local history length for the server —
	// the merge weight.
	Records int `json:"records"`
	// Version is the answering node's store version for the server; two
	// NodeAssessments with equal Records and Version saw the same history.
	Version uint64 `json:"version"`
	// XOR is the XOR of the content hashes of the node's local records for
	// the server. Two NodeAssessments with equal Records and XOR hold (up
	// to hash collisions) the same record set, regardless of write order.
	XOR uint64 `json:"xor,omitempty"`
	// AssessResponse is the node's local assessment outcome; zero when the
	// request was DigestOnly.
	AssessResponse
}

// FwdSubmitRequest hands one feedback record to a peer node.
type FwdSubmitRequest struct {
	Node     string            `json:"node"`
	Feedback feedback.Feedback `json:"feedback"`
	// Replica marks a replication write: the receiver stores the record
	// because it is in the server's replica set, and must not replicate it
	// onward (only the owner fans out to replicas, exactly once).
	Replica bool `json:"replica,omitempty"`
}

// FwdBatchRequest hands a slice of feedback records to a peer node, all
// owned (or replicated) by that peer. Same Replica semantics as
// FwdSubmitRequest.
type FwdBatchRequest struct {
	Node    string              `json:"node"`
	Records []feedback.Feedback `json:"records"`
	Replica bool                `json:"replica,omitempty"`
}

// FwdAssessBatchRequest asks a peer node to assess a subset of a batch —
// the servers that peer owns. The receiver runs its normal shard-grouped
// batch path over local state only.
type FwdAssessBatchRequest struct {
	Node      string              `json:"node"`
	Servers   []feedback.EntityID `json:"servers"`
	Threshold float64             `json:"threshold"`
}

// FwdAssessBatchResponse answers a forwarded batch: Items[i] is the
// outcome for Servers[i], as in AssessBatchResponse.
type FwdAssessBatchResponse struct {
	Node  string            `json:"node"`
	Items []AssessBatchItem `json:"items"`
}

// ClusterStatusRequest asks a node for its view of the cluster.
type ClusterStatusRequest struct{}

// ClusterPeer is one membership entry in a cluster status response.
type ClusterPeer struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Self marks the answering node's own entry.
	Self bool `json:"self,omitempty"`
	// RTTMs is the answering node's last measured round-trip to the peer in
	// milliseconds; 0 when never dialed.
	RTTMs float64 `json:"rtt_ms,omitempty"`
}

// ClusterStatusResponse describes the answering node's cluster view. A
// single-node (non-clustered) deployment answers Enabled=false with no
// peers.
type ClusterStatusResponse struct {
	Enabled  bool          `json:"enabled"`
	Node     string        `json:"node,omitempty"`
	Replicas int           `json:"replicas,omitempty"`
	VNodes   int           `json:"vnodes,omitempty"`
	Peers    []ClusterPeer `json:"peers,omitempty"`
	// Owned is the number of servers in the local store (all of which the
	// node owns or replicates).
	Owned int `json:"owned"`
}
