package store

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"honestplayer/internal/feedback"
)

func rec(s, c feedback.EntityID, good bool, at int64) feedback.Feedback {
	r := feedback.Negative
	if good {
		r = feedback.Positive
	}
	return feedback.Feedback{Time: time.Unix(at, 0).UTC(), Server: s, Client: c, Rating: r}
}

func TestHashOfDistinguishes(t *testing.T) {
	a := rec("s", "c", true, 1)
	tests := []feedback.Feedback{
		rec("s", "c", true, 2),  // time differs
		rec("s", "c", false, 1), // rating differs
		rec("s2", "c", true, 1), // server differs
		rec("s", "c2", true, 1), // client differs
	}
	for i, b := range tests {
		if HashOf(a) == HashOf(b) {
			t.Errorf("case %d: hash collision for distinct records", i)
		}
	}
	if HashOf(a) != HashOf(rec("s", "c", true, 1)) {
		t.Error("identical records must hash equal")
	}
}

func TestHashOfFieldBoundary(t *testing.T) {
	// ("ab","c") must differ from ("a","bc"): the separator matters.
	a := rec("ab", "c", true, 1)
	b := rec("a", "bc", true, 1)
	if HashOf(a) == HashOf(b) {
		t.Fatal("field-boundary hash collision")
	}
}

func TestStoreAddAndDedup(t *testing.T) {
	s := New()
	ok, err := s.Add(rec("srv", "c1", true, 1))
	if err != nil || !ok {
		t.Fatalf("first add: %v %v", ok, err)
	}
	ok, err = s.Add(rec("srv", "c1", true, 1))
	if err != nil || ok {
		t.Fatalf("duplicate add: %v %v", ok, err)
	}
	if s.Len() != 1 || s.ServerLen("srv") != 1 {
		t.Fatalf("len = %d / %d", s.Len(), s.ServerLen("srv"))
	}
}

func TestStoreAddInvalid(t *testing.T) {
	s := New()
	if _, err := s.Add(feedback.Feedback{}); err == nil {
		t.Fatal("invalid record must fail")
	}
}

func TestStoreTimeOrdering(t *testing.T) {
	s := New()
	// Insert out of order.
	for _, at := range []int64{5, 1, 3, 2, 4} {
		if _, err := s.Add(rec("srv", "c", at%2 == 0, at)); err != nil {
			t.Fatal(err)
		}
	}
	recs := s.Records("srv")
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			t.Fatalf("records out of order: %v", recs)
		}
	}
	h, err := s.History("srv")
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 5 {
		t.Fatalf("history len = %d", h.Len())
	}
}

func TestStoreHistoryUnknownServer(t *testing.T) {
	s := New()
	h, err := s.History("nobody")
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 0 {
		t.Fatal("unknown server must have empty history")
	}
}

func TestStoreServers(t *testing.T) {
	s := New()
	_, _ = s.Add(rec("b", "c", true, 1))
	_, _ = s.Add(rec("a", "c", true, 1))
	got := s.Servers()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Servers = %v", got)
	}
}

func TestStoreMissingFrom(t *testing.T) {
	s := New()
	r1 := rec("srv", "c1", true, 1)
	r2 := rec("srv", "c2", false, 2)
	_, _ = s.Add(r1)
	_, _ = s.Add(r2)
	missing := s.MissingFrom([]Hash{HashOf(r1)})
	if len(missing) != 1 || HashOf(missing[0]) != HashOf(r2) {
		t.Fatalf("MissingFrom = %v", missing)
	}
	if got := s.MissingFrom(s.Hashes()); len(got) != 0 {
		t.Fatalf("nothing should be missing: %v", got)
	}
	if got := s.MissingFrom(nil); len(got) != 2 {
		t.Fatalf("everything should be missing: %v", got)
	}
}

func TestStoreAddAll(t *testing.T) {
	s := New()
	recs := []feedback.Feedback{
		rec("srv", "c1", true, 1),
		rec("srv", "c1", true, 1), // dup
		rec("srv", "c2", false, 2),
	}
	added, err := s.AddAll(recs)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("added = %d", added)
	}
	// Error propagates with partial insert count.
	added, err = s.AddAll([]feedback.Feedback{rec("x", "c", true, 9), {}})
	if err == nil {
		t.Fatal("invalid record must fail")
	}
	if added != 1 {
		t.Fatalf("partial added = %d", added)
	}
}

func TestStoreConcurrentAdds(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, err := s.Add(rec("srv", feedback.EntityID(rune('a'+g)), i%2 == 0, int64(g*1000+i)))
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("len = %d, want 800", s.Len())
	}
	recs := s.Records("srv")
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			t.Fatal("concurrent inserts broke time ordering")
		}
	}
}

// Property: two stores that ingest the same multiset of records in
// different orders converge to identical state (the gossip convergence
// invariant).
func TestStoreOrderIndependence(t *testing.T) {
	f := func(raw []uint8) bool {
		recs := make([]feedback.Feedback, len(raw))
		for i, r := range raw {
			recs[i] = rec(
				feedback.EntityID(rune('s'+r%3)),
				feedback.EntityID(rune('a'+r%7)),
				r%2 == 0,
				int64(r),
			)
		}
		a, b := New(), New()
		if _, err := a.AddAll(recs); err != nil {
			return false
		}
		// Reverse order into b.
		for i := len(recs) - 1; i >= 0; i-- {
			if _, err := b.Add(recs[i]); err != nil {
				return false
			}
		}
		if a.Len() != b.Len() {
			return false
		}
		for _, srv := range a.Servers() {
			ra, rb := a.Records(srv), b.Records(srv)
			if len(ra) != len(rb) {
				return false
			}
			for i := range ra {
				if HashOf(ra[i]) != HashOf(rb[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestStoreVersionCounter(t *testing.T) {
	s := New()
	if v := s.Version("srv"); v != 0 {
		t.Fatalf("unknown server version = %d", v)
	}
	if _, err := s.Add(rec("srv", "c1", true, 1)); err != nil {
		t.Fatal(err)
	}
	if v := s.Version("srv"); v != 1 {
		t.Fatalf("version after first add = %d", v)
	}
	// Duplicates are not accepted writes and must not bump the version.
	if ok, _ := s.Add(rec("srv", "c1", true, 1)); ok {
		t.Fatal("duplicate accepted")
	}
	if v := s.Version("srv"); v != 1 {
		t.Fatalf("version after duplicate = %d", v)
	}
	// Out-of-order inserts bump too.
	if _, err := s.Add(rec("srv", "c2", true, 0)); err != nil {
		t.Fatal(err)
	}
	if v := s.Version("srv"); v != 2 {
		t.Fatalf("version after out-of-order add = %d", v)
	}
	// Versions are per server.
	if v := s.Version("other"); v != 0 {
		t.Fatalf("other server version = %d", v)
	}
	if g := s.GlobalVersion(); g != 2 {
		t.Fatalf("global version = %d", g)
	}
}

func TestStoreSnapshotImmutable(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		if _, err := s.Add(rec("srv", "c", i%2 == 0, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	snap, ver := s.Snapshot("srv")
	if snap.Len() != 10 || ver != 10 {
		t.Fatalf("snapshot len=%d ver=%d", snap.Len(), ver)
	}
	wantGood := snap.GoodCount()
	// Later writes — both appends and an out-of-order insert that rebuilds —
	// must not disturb the earlier snapshot.
	if _, err := s.Add(rec("srv", "c", true, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(rec("srv", "zzz", true, 5)); err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 10 || snap.GoodCount() != wantGood {
		t.Fatalf("snapshot mutated: len=%d good=%d", snap.Len(), snap.GoodCount())
	}
	for i := 0; i < snap.Len(); i++ {
		if snap.At(i).Client == "zzz" {
			t.Fatal("later insert leaked into old snapshot")
		}
	}
	if h2, ver2 := s.Snapshot("srv"); h2.Len() != 12 || ver2 != 12 {
		t.Fatalf("new snapshot len=%d ver=%d", h2.Len(), ver2)
	}
}

// TestStoreShardedConcurrentMixed hammers Add, History, Records, Checksums,
// Hashes and Version across many servers (hence shards) in parallel. Run
// under -race this is the store's main concurrency regression test.
func TestStoreShardedConcurrentMixed(t *testing.T) {
	s := NewSharded(8)
	const writers, perWriter, servers = 8, 200, 13
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				srv := feedback.EntityID(rune('A' + (g*perWriter+i)%servers))
				_, err := s.Add(rec(srv, feedback.EntityID(rune('a'+g)), i%3 == 0, int64(g*10000+i)))
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Readers run concurrently with the writers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				srv := feedback.EntityID(rune('A' + i%servers))
				h, ver := s.Snapshot(srv)
				if uint64(h.Len()) > ver {
					t.Errorf("snapshot len %d > version %d", h.Len(), ver)
					return
				}
				_ = h.GoodRatio()
				_ = s.Records(srv)
				_ = s.Checksums()
				_ = s.Len()
			}
		}()
	}
	wg.Wait()
	if s.Len() != writers*perWriter {
		t.Fatalf("len = %d, want %d", s.Len(), writers*perWriter)
	}
	// Per-server order survived the concurrency.
	for i := 0; i < servers; i++ {
		srv := feedback.EntityID(rune('A' + i))
		recs := s.Records(srv)
		for j := 1; j < len(recs); j++ {
			if recs[j].Time.Before(recs[j-1].Time) {
				t.Fatalf("server %s out of order", srv)
			}
		}
	}
	// Checksums agree with a fresh single-shard ingest of the same records.
	ref := NewSharded(1)
	for _, srv := range s.Servers() {
		if _, err := ref.AddAll(s.Records(srv)); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.Checksums()
	got := s.Checksums()
	if len(got) != len(want) {
		t.Fatalf("checksum servers: %d vs %d", len(got), len(want))
	}
	for srv, cs := range want {
		if got[srv] != cs {
			t.Fatalf("checksum mismatch for %s: %+v vs %+v", srv, got[srv], cs)
		}
	}
}

// Shard count must not change any observable content.
func TestStoreShardCountInvariance(t *testing.T) {
	recs := benchRecsMulti(300, 7)
	for _, shards := range []int{1, 3, 16} {
		s := NewSharded(shards)
		if got := s.NumShards(); got != shards {
			t.Fatalf("NumShards = %d", got)
		}
		if _, err := s.AddAll(recs); err != nil {
			t.Fatal(err)
		}
		ref := NewSharded(1)
		if _, err := ref.AddAll(recs); err != nil {
			t.Fatal(err)
		}
		if s.Len() != ref.Len() {
			t.Fatalf("shards=%d: len %d vs %d", shards, s.Len(), ref.Len())
		}
		gotServers, wantServers := s.Servers(), ref.Servers()
		if len(gotServers) != len(wantServers) {
			t.Fatalf("shards=%d: servers %v vs %v", shards, gotServers, wantServers)
		}
		gotHashes, wantHashes := s.Hashes(), ref.Hashes()
		for i := range wantHashes {
			if gotHashes[i] != wantHashes[i] {
				t.Fatalf("shards=%d: hash digest differs at %d", shards, i)
			}
		}
	}
}

func TestServerChecksum(t *testing.T) {
	s := New()
	if got := s.ServerChecksum("nobody"); got != (Checksum{}) {
		t.Fatalf("unknown server checksum = %+v; want zero", got)
	}
	recs := []feedback.Feedback{
		rec("a", "c1", true, 10),
		rec("a", "c2", false, 20),
		rec("a", "c3", true, 30),
	}
	for _, f := range recs {
		if _, err := s.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	got := s.ServerChecksum("a")
	var wantXOR uint64
	for _, f := range recs {
		wantXOR ^= uint64(HashOf(f))
	}
	if got.Count != 3 || got.XOR != wantXOR {
		t.Fatalf("checksum = %+v; want count 3 xor %d", got, wantXOR)
	}
	// A duplicate changes nothing; the checksum is order-independent, so a
	// second store fed the same records in reverse agrees.
	if _, err := s.Add(recs[0]); err != nil {
		t.Fatal(err)
	}
	if again := s.ServerChecksum("a"); again != got {
		t.Fatalf("checksum moved on duplicate: %+v != %+v", again, got)
	}
	s2 := New()
	for i := len(recs) - 1; i >= 0; i-- {
		if _, err := s2.Add(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if other := s2.ServerChecksum("a"); other != got {
		t.Fatalf("checksum order-dependent: %+v != %+v", other, got)
	}
	if per := s.Checksums()["a"]; per != got {
		t.Fatalf("Checksums()[a] = %+v; ServerChecksum = %+v", per, got)
	}
}
