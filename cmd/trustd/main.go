// Command trustd runs a reputation node: a TCP reputation server with a
// configurable two-phase assessor, optionally gossiping its feedback store
// with peer nodes for decentralised deployments.
//
// Requests are deadline-bounded (-request-timeout); shutdown on
// SIGINT/SIGTERM is graceful, draining in-flight requests for up to
// -drain-timeout before force-closing. With -metrics-addr an HTTP endpoint
// serves GET /metricz: per-type request counts, error counts, and latency
// quantiles as JSON, plus the write-path counters — submit.batch requests,
// items, and rejects, and (with -ledger) the group-commit flush counters
// with their group-size p50/p99.
//
// With -node-id the node joins a static cluster: -peers is then the full
// membership as id=addr[~gossipaddr] pairs, server ownership is partitioned
// over a consistent-hash ring, non-owners forward requests to owners, and
// gossip (if enabled) is scoped to ring neighbours and owned servers.
//
// Usage:
//
//	trustd -addr 127.0.0.1:7700 -scheme multi -trust average
//	trustd -addr :7700 -gossip :7701 -peers host2:7701,host3:7701
//	trustd -addr :7700 -request-timeout 2s -drain-timeout 10s -metrics-addr 127.0.0.1:7780
//	trustd -addr :7700 -incremental        # O(windows) assessments under writes
//	trustd -addr :7700 -node-id a -replicas 2 \
//	    -peers a=host1:7700~host1:7701,b=host2:7700~host2:7701,c=host3:7700~host3:7701
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/cluster"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/gossip"
	"honestplayer/internal/ledger"
	"honestplayer/internal/repserver"
	"honestplayer/internal/stats"
	"honestplayer/internal/store"
	"honestplayer/internal/trust"
)

func main() {
	if err := run(context.Background(), os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trustd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("trustd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:7700", "reputation server listen address")
		scheme       = fs.String("scheme", "multi", "behaviour testing: none | single | multi | collusion | collusion-multi")
		trustName    = fs.String("trust", "average", "trust function: average | weighted | beta")
		lambda       = fs.Float64("lambda", 0.5, "lambda for the weighted trust function")
		window       = fs.Int("window", 10, "transaction window size m")
		gossipAddr   = fs.String("gossip", "", "gossip listen address (empty disables gossip)")
		peersArg     = fs.String("peers", "", "comma-separated gossip peer addresses; with -node-id, the full cluster membership as id=addr[~gossipaddr] pairs")
		nodeID       = fs.String("node-id", "", "this node's ID in a static cluster (empty = single-node mode; requires -peers membership including this ID)")
		replicas     = fs.Int("replicas", cluster.DefaultReplicas, "replica count per server ID when clustered (owner + R-1 ring successors)")
		interval     = fs.Duration("interval", time.Second, "gossip round interval")
		name         = fs.String("name", "node", "node name used in gossip digests")
		ledgerPath   = fs.String("ledger", "", "segmented ledger directory for durable feedback storage (a legacy single-file ledger migrates in place; empty = in-memory only)")
		segmentBytes = fs.Int64("segment-bytes", ledger.DefaultSegmentBytes, "ledger segment roll-over threshold in bytes")
		snapEvery    = fs.Uint64("snapshot-every", 0, "write a store snapshot after this many durable appends, bounding boot-time replay (0 disables)")
		snapOnStop   = fs.Bool("snapshot-on-shutdown", false, "write a final snapshot during graceful shutdown")
		seed         = fs.Uint64("seed", 1, "seed for threshold calibration")
		shards       = fs.Int("shards", store.DefaultShards, "feedback store shard count (writes to different servers never contend)")
		cacheSize    = fs.Int("assess-cache", 4096, "assessment cache entries (0 disables caching)")
		reqTimeout   = fs.Duration("request-timeout", 10*time.Second, "per-request deadline; exceeding it yields a deadline_exceeded error frame (0 disables)")
		drain        = fs.Duration("drain-timeout", repserver.DefaultDrainTimeout, "grace period for in-flight requests at shutdown")
		slowLog      = fs.Duration("slow-log", 0, "log requests slower than this (0 disables)")
		metricsAddr  = fs.String("metrics-addr", "", "HTTP listen address serving GET /metricz stats (empty disables)")
		incremental  = fs.Bool("incremental", false, "serve assessments from per-server incremental accumulators (O(windows) per assess, bit-identical to a full recompute; replayed ledgers are folded in at startup)")
		batchWorkers = fs.Int("batch-workers", 0, "worker pool size for assess.batch shard fan-out (0 = GOMAXPROCS)")
		arenaCap     = fs.Int("arena-cap", 0, "per-server incremental PMF-arena cap in entries per generation (0 = default 32768; superseded by -mem-budget, which accounts arena memory globally)")
		memBudget    = fs.String("mem-budget", "", "node-wide resident memory budget for server state, e.g. 512MiB or 1G (empty disables; requires -ledger): idle servers are evicted to stubs and rebuilt on demand")
		wireV2       = fs.Bool("wire-v2", true, "accept the pipelined binary v2 framing alongside JSON on the same listener (false restores the JSON-only pre-v2 server)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	budgetBytes, err := parseSize(*memBudget)
	if err != nil {
		return fmt.Errorf("-mem-budget: %w", err)
	}
	if budgetBytes > 0 && *ledgerPath == "" {
		return errors.New("-mem-budget requires -ledger (evicted state is rebuilt from snapshots)")
	}

	fn, err := trustFunc(*trustName, *lambda)
	if err != nil {
		return err
	}
	tester, err := tester(*scheme, *window, *seed, *arenaCap)
	if err != nil {
		return err
	}
	assessor, err := core.NewTwoPhase(tester, fn)
	if err != nil {
		return err
	}

	// ctx ends on SIGINT/SIGTERM (or when the caller cancels it); it also
	// bounds a ledger replay so a node told to stop mid-startup exits
	// promptly.
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	logger := log.New(os.Stderr, "trustd ", log.LstdFlags)
	st := store.NewSharded(*shards)
	serverCfg := repserver.Config{
		Assessor: assessor, Store: st, Logger: logger, AssessCacheSize: *cacheSize,
		RequestTimeout: *reqTimeout, DrainTimeout: *drain, SlowLogThreshold: *slowLog,
		Incremental: *incremental, BatchWorkers: *batchWorkers, DisableV2: !*wireV2,
	}
	var ps *ledger.PersistentStore
	if *ledgerPath != "" {
		opts := ledger.Options{
			Shards:        *shards,
			SegmentBytes:  *segmentBytes,
			SnapshotEvery: *snapEvery,
			Logf:          logger.Printf,
			MemBudget:     budgetBytes,
		}
		if *incremental && assessor.SupportsIncrementalState() {
			// Snapshots then carry serialized accumulator state, so a booting
			// node resumes incremental assessment without re-feeding the
			// snapshotted history.
			opts.AccumulatorFactory = func(server feedback.EntityID) store.Accumulator {
				sa, err := assessor.NewServerAccumulator(server)
				if err != nil {
					return nil
				}
				return sa
			}
			opts.EncodeAccumulator = func(acc store.Accumulator) ([]byte, bool) {
				sa, ok := acc.(*core.ServerAccumulator)
				if !ok {
					return nil, false
				}
				return sa.AppendState(nil)
			}
			opts.RestoreAccumulator = func(server feedback.EntityID, state []byte) (store.Accumulator, int, error) {
				return assessor.RestoreServerAccumulator(server, state)
			}
		}
		ps, err = ledger.OpenStoreOptions(ctx, *ledgerPath, opts)
		if err != nil {
			return err
		}
		defer func() {
			if *snapOnStop {
				if seq, err := ps.Snapshot(); err != nil {
					logger.Printf("shutdown snapshot: %v", err)
				} else {
					logger.Printf("shutdown snapshot %d written", seq)
				}
			}
			if err := ps.Close(); err != nil {
				logger.Printf("close ledger: %v", err)
			}
		}()
		st = ps.Store()
		serverCfg.Store = st
		serverCfg.Recorder = ps
		if budgetBytes > 0 {
			serverCfg.Rebuilder = ps
			life := st.Lifecycle()
			logger.Printf("memory budget %d bytes: %d servers resident (%d bytes), %d evicted",
				budgetBytes, life.Resident, life.ResidentBytes, life.Evicted)
			if *arenaCap != 0 {
				logger.Printf("note: -arena-cap is folded into the -mem-budget accounting; the cap still bounds per-server arena growth, but -mem-budget is the memory control")
			}
		}
		lst := ps.Stats()
		logger.Printf("ledger %s: %d records in store (boot mode %s, %d segments)",
			*ledgerPath, st.Len(), lst.BootMode, lst.Segments)
		if lst.Truncations > 0 {
			logger.Printf("ledger %s: CORRUPTION repaired at boot: %d segment(s) truncated, %d bytes discarded (longest verified prefix kept)",
				*ledgerPath, lst.Truncations, lst.TruncatedBytes)
		}
	}
	srv, err := repserver.New(*addr, serverCfg)
	if err != nil {
		return err
	}

	var cl *cluster.Cluster
	if *nodeID != "" {
		nodes, err := cluster.ParseNodes(*peersArg)
		if err != nil {
			closeErr := srv.Close()
			if closeErr != nil {
				logger.Printf("close server: %v", closeErr)
			}
			return fmt.Errorf("-peers: %w", err)
		}
		cl, err = cluster.New(cluster.Config{
			Self: *nodeID, Nodes: nodes, Replicas: *replicas, Logger: logger,
		})
		if err != nil {
			closeErr := srv.Close()
			if closeErr != nil {
				logger.Printf("close server: %v", closeErr)
			}
			return err
		}
		srv.SetCluster(cl)
	}

	srv.Start()
	logger.Printf("reputation server (%s) listening on %s (request timeout %s, drain %s)",
		assessor.Name(), srv.Addr(), *reqTimeout, *drain)
	if cl != nil {
		logger.Printf("cluster node %q of %d (replicas %d)", cl.Self(), cl.Size(), cl.Replicas())
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			body := struct {
				repserver.Stats
				Ledger      *ledger.Stats        `json:"ledger,omitempty"`
				TopResident []store.ResidentSize `json:"top_resident,omitempty"`
			}{Stats: srv.Stats()}
			if ps != nil {
				lst := ps.Stats()
				body.Ledger = &lst
			}
			if budgetBytes > 0 {
				body.TopResident = st.TopResident(10)
			}
			if err := enc.Encode(body); err != nil {
				logger.Printf("metricz encode: %v", err)
			}
		})
		metricsSrv = &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("metrics server: %v", err)
			}
		}()
		logger.Printf("metrics on http://%s/metricz", *metricsAddr)
	}

	var node *gossip.Node
	if *gossipAddr != "" {
		var peers []string
		gcfg := gossip.Config{
			Name: *name, Store: st, Interval: *interval, Seed: *seed, Logger: logger,
		}
		if cl != nil {
			// Clustered: anti-entropy runs against ring neighbours only and
			// repairs only the servers this node's replica set covers.
			peers = cl.GossipPeers()
			gcfg.Owned = cl.Owns
			if gcfg.Name == "node" {
				gcfg.Name = cl.Self()
			}
		} else if *peersArg != "" {
			peers = strings.Split(*peersArg, ",")
		}
		gcfg.Peers = peers
		node, err = gossip.New(*gossipAddr, gcfg)
		if err != nil {
			closeErr := srv.Close()
			if closeErr != nil {
				logger.Printf("close server: %v", closeErr)
			}
			return err
		}
		node.Start()
		logger.Printf("gossip node %q on %s (peers: %v)", *name, node.Addr(), peers)
	}

	<-ctx.Done()
	logger.Printf("shutting down (draining up to %s)", *drain)
	if metricsSrv != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := metricsSrv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("close metrics server: %v", err)
		}
		cancel()
	}
	if node != nil {
		if err := node.Close(); err != nil {
			logger.Printf("close gossip: %v", err)
		}
	}
	if cl != nil {
		if err := cl.Close(); err != nil {
			logger.Printf("close cluster: %v", err)
		}
	}
	err = srv.Close()
	if raw, jerr := json.Marshal(srv.Stats()); jerr == nil {
		logger.Printf("final stats: %s", raw)
	}
	return err
}

// parseSize parses a byte size with an optional K/M/G (or KiB/MiB/GiB)
// suffix, binary units. Empty and "0" mean disabled.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	upper := strings.ToUpper(s)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, u.suffix) {
			mult = u.mult
			s = s[:len(s)-len(u.suffix)]
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative size")
	}
	return n * mult, nil
}

func trustFunc(name string, lambda float64) (trust.Func, error) {
	switch name {
	case "average":
		return trust.Average{}, nil
	case "weighted":
		return trust.NewWeighted(lambda)
	case "beta":
		return trust.Beta{}, nil
	default:
		return nil, fmt.Errorf("unknown trust function %q", name)
	}
}

func tester(scheme string, window int, seed uint64, arenaCap int) (behavior.Tester, error) {
	cfg := behavior.Config{
		WindowSize: window,
		Calibrator: stats.NewCalibrator(stats.CalibrationConfig{Seed: seed}, 0),
		ArenaCap:   arenaCap,
	}
	switch scheme {
	case "none":
		return nil, nil
	case "single":
		return behavior.NewSingle(cfg)
	case "multi":
		return behavior.NewMulti(cfg)
	case "collusion":
		return behavior.NewCollusion(cfg)
	case "collusion-multi":
		return behavior.NewCollusionMulti(cfg)
	default:
		return nil, fmt.Errorf("unknown scheme %q", scheme)
	}
}
