// Package feedback defines the reputation-system data model of the paper:
// transactions, feedback tuples (t, s, c, r), and the append-only
// transaction history of a server, together with the windowing and
// issuer-grouping operations the behaviour tests are built on.
package feedback

import (
	"errors"
	"fmt"
	"time"
)

// Rating is the client's one-dimensional evaluation of a transaction. The
// paper's model is binary {positive, negative}; the type leaves room for the
// multi-value extension discussed in §3.1.
type Rating int

const (
	// Negative marks a bad transaction.
	Negative Rating = iota + 1
	// Positive marks a good transaction.
	Positive
)

// String implements fmt.Stringer.
func (r Rating) String() string {
	switch r {
	case Positive:
		return "positive"
	case Negative:
		return "negative"
	default:
		return fmt.Sprintf("Rating(%d)", int(r))
	}
}

// Valid reports whether r is one of the defined ratings.
func (r Rating) Valid() bool { return r == Positive || r == Negative }

// Good reports whether the rating marks a good transaction.
func (r Rating) Good() bool { return r == Positive }

// EntityID identifies a server or client in the system.
type EntityID string

// Feedback is the statement a client issues about the quality of a server in
// a single transaction: the tuple (t, s, c, r) of §2.
type Feedback struct {
	// Time is when the transaction happened.
	Time time.Time `json:"time"`
	// Server is the service provider being rated.
	Server EntityID `json:"server"`
	// Client is the feedback issuer.
	Client EntityID `json:"client"`
	// Rating is the client's evaluation.
	Rating Rating `json:"rating"`
}

// Validation errors for feedback records.
var (
	ErrInvalidRating = errors.New("feedback: invalid rating")
	ErrEmptyEntity   = errors.New("feedback: empty entity id")
)

// Validate reports whether the feedback record is well-formed.
func (f Feedback) Validate() error {
	if !f.Rating.Valid() {
		return fmt.Errorf("%w: %d", ErrInvalidRating, int(f.Rating))
	}
	if f.Server == "" {
		return fmt.Errorf("%w: server", ErrEmptyEntity)
	}
	if f.Client == "" {
		return fmt.Errorf("%w: client", ErrEmptyEntity)
	}
	return nil
}

// Good reports whether this feedback marks a good transaction.
func (f Feedback) Good() bool { return f.Rating.Good() }

// String implements fmt.Stringer.
func (f Feedback) String() string {
	return fmt.Sprintf("feedback{%s s=%s c=%s %s}",
		f.Time.Format(time.RFC3339), f.Server, f.Client, f.Rating)
}
