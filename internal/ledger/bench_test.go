package ledger

import (
	"path/filepath"
	"testing"
	"time"

	"honestplayer/internal/feedback"
)

func BenchmarkAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.jsonl")
	l, _, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := feedback.Feedback{
			Time: time.Unix(int64(i), 0).UTC(), Server: "s", Client: "c",
			Rating: feedback.Positive,
		}
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.jsonl")
	l, _, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		rec := feedback.Feedback{
			Time: time.Unix(int64(i), 0).UTC(), Server: "s", Client: "c",
			Rating: feedback.Positive,
		}
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2, recs, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != 10000 {
			b.Fatalf("replayed %d", len(recs))
		}
		if err := l2.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
