package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// testKeys returns a deterministic set of server-ID-shaped keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("server-%04d", i)
	}
	return keys
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node id accepted")
	}
}

// TestRingDeterminism: rings built from the same membership in any order
// route every key identically — the property that lets each node forward
// without coordination.
func TestRingDeterminism(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r1, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []string{"n4", "n2", "n5", "n1", "n3"}
	r2, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(2000) {
		if o1, o2 := r1.Owner(k), r2.Owner(k); o1 != o2 {
			t.Fatalf("owner of %q differs across build orders: %q vs %q", k, o1, o2)
		}
		rs1, rs2 := r1.Replicas(k, 3), r2.Replicas(k, 3)
		if len(rs1) != len(rs2) {
			t.Fatalf("replica sets of %q differ in size: %v vs %v", k, rs1, rs2)
		}
		for i := range rs1 {
			if rs1[i] != rs2[i] {
				t.Fatalf("replica sets of %q differ: %v vs %v", k, rs1, rs2)
			}
		}
	}
}

// TestRingMinimalMovement: adding (or removing) one member only remaps the
// keys adjacent to its points — roughly K/N of them — and every remapped key
// moves to (or from) exactly that member.
func TestRingMinimalMovement(t *testing.T) {
	keys := testKeys(5000)
	before, err := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"n1", "n2", "n3", "n4", "n5"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		o1, o2 := before.Owner(k), after.Owner(k)
		if o1 == o2 {
			continue
		}
		moved++
		if o2 != "n5" {
			t.Fatalf("key %q moved %q -> %q on join of n5; only moves onto the joining node are minimal", k, o1, o2)
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the joining node")
	}
	// Expect ~1/5 of keys to move; accept a generous band around it so the
	// test pins the property, not the hash function.
	frac := float64(moved) / float64(len(keys))
	if frac > 0.35 {
		t.Fatalf("join of 1 node in 5 moved %.1f%% of keys; want about 20%%", 100*frac)
	}

	// Leave is the mirror image: keys move only off the leaving node.
	for _, k := range keys {
		o1, o2 := after.Owner(k), before.Owner(k)
		if o1 == o2 {
			continue
		}
		if o1 != "n5" {
			t.Fatalf("key %q moved %q -> %q on leave of n5; it was not on the leaving node", k, o1, o2)
		}
	}
}

// TestRingReplicaPlacement: replica sets are distinct nodes, owner first,
// clamped to the membership size.
func TestRingReplicaPlacement(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	distinctSets := make(map[string]struct{})
	for _, k := range testKeys(500) {
		rs := r.Replicas(k, 3)
		if len(rs) != 3 {
			t.Fatalf("Replicas(%q, 3) = %v; want 3 nodes", k, rs)
		}
		if rs[0] != r.Owner(k) {
			t.Fatalf("Replicas(%q)[0] = %q; want owner %q", k, rs[0], r.Owner(k))
		}
		seen := make(map[string]struct{})
		for _, id := range rs {
			if _, dup := seen[id]; dup {
				t.Fatalf("Replicas(%q) = %v contains a duplicate", k, rs)
			}
			seen[id] = struct{}{}
		}
		distinctSets[fmt.Sprint(rs)] = struct{}{}
	}
	// Replica sets follow each key's ring position, so different keys owned
	// by different points produce different successor chains.
	if len(distinctSets) < 5 {
		t.Fatalf("only %d distinct replica sets over 500 keys; placement looks degenerate", len(distinctSets))
	}

	// Asking for more replicas than members returns everyone.
	all := r.Replicas("some-key", 99)
	if len(all) != len(nodes) {
		t.Fatalf("Replicas(n>size) = %v; want all %d nodes", all, len(nodes))
	}
}

// TestRingLoadBalance: vnodes keep per-node ownership within a sane band.
func TestRingLoadBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	rng := rand.New(rand.NewSource(7))
	n := 20000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d-%d", i, rng.Int63()))]++
	}
	want := n / len(nodes)
	for _, id := range nodes {
		c := counts[id]
		if c < want/3 || c > want*3 {
			t.Fatalf("node %s owns %d of %d keys (fair share %d); distribution too skewed", id, c, n, want)
		}
	}
}

func TestRingSuccessors(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	succ := r.Successors("n1", 0)
	if len(succ) == 0 {
		t.Fatal("no successors for n1")
	}
	prev := ""
	for _, id := range succ {
		if id == "n1" {
			t.Fatalf("successors of n1 include n1: %v", succ)
		}
		if id <= prev {
			t.Fatalf("successors not sorted: %v", succ)
		}
		prev = id
	}
	if capped := r.Successors("n1", 1); len(capped) != 1 {
		t.Fatalf("Successors(max=1) = %v; want 1 entry", capped)
	}
	if unknown := r.Successors("nope", 0); unknown != nil {
		t.Fatalf("Successors of unknown node = %v; want nil", unknown)
	}
}

// TestRingSingleNode: the 1-node ring owns everything — the degenerate case
// the cluster routing relies on to collapse to pure local serving.
func TestRingSingleNode(t *testing.T) {
	r, err := NewRing([]string{"solo"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(100) {
		if r.Owner(k) != "solo" {
			t.Fatalf("single-node ring does not own %q", k)
		}
		if rs := r.Replicas(k, 3); len(rs) != 1 || rs[0] != "solo" {
			t.Fatalf("single-node Replicas(%q) = %v", k, rs)
		}
	}
	if succ := r.Successors("solo", 0); len(succ) != 0 {
		t.Fatalf("single-node ring has successors: %v", succ)
	}
}
