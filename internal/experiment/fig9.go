package experiment

import (
	"fmt"
	"time"

	"honestplayer/internal/attack"
	"honestplayer/internal/behavior"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// PerfConfig parameterises the Fig. 9 performance experiment: wall-clock
// time of single- and (optimised) multi-behaviour testing on histories of
// 100 000 – 800 000 transactions, plus the naive O(n²) multi-testing
// ablation at smaller sizes.
type PerfConfig struct {
	// HistorySizes is the x axis; nil means {100k, 200k, …, 800k}.
	HistorySizes []int
	// NaiveSizes is the x axis of the O(n²) ablation; nil means
	// {10k, 20k, 30k, 40k}. Empty slice disables the ablation.
	NaiveSizes []int
	// Repeats measures each point this many times and keeps the minimum
	// (steady-state) duration; zero means 3.
	Repeats int
	// Seed drives the honest history generation.
	Seed uint64
	// CalibrationReplicates tunes the Monte-Carlo ε estimation; zero means
	// 300 (the threshold cache is pre-warmed outside the timed region).
	CalibrationReplicates int
}

func (c PerfConfig) withDefaults() PerfConfig {
	if c.HistorySizes == nil {
		for n := 100000; n <= 800000; n += 100000 {
			c.HistorySizes = append(c.HistorySizes, n)
		}
	}
	if c.NaiveSizes == nil {
		c.NaiveSizes = []int{10000, 20000, 30000, 40000}
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	if c.CalibrationReplicates == 0 {
		c.CalibrationReplicates = 300
	}
	return c
}

// RunFig9 regenerates Fig. 9: behaviour-testing running time vs. initial
// history size. The paper's claim is the complexity shape — O(n) for the
// single test and for multi-testing with the intermediate-statistics
// optimisation — which is hardware-independent even though the absolute
// milliseconds are not.
func RunFig9(cfg PerfConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	cal := newCalibrator(cfg.Seed+4000, cfg.CalibrationReplicates)
	bcfg := behavior.Config{WindowSize: DefaultWindowSize, Calibrator: cal}
	single, err := behavior.NewSingle(bcfg)
	if err != nil {
		return nil, err
	}
	multi, err := behavior.NewMulti(bcfg)
	if err != nil {
		return nil, err
	}
	naive, err := behavior.NewMultiNaive(bcfg)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "fig9",
		Title:  "Time cost vs. initial history size",
		XLabel: "initial history size",
		YLabel: "running time (ms)",
	}

	rng := stats.NewRNG(cfg.Seed)
	timed := func(tester behavior.Tester, h *feedback.History) (float64, error) {
		// Warm the threshold cache outside the timed region: Fig. 9
		// measures testing time, not one-off calibration.
		if _, err := tester.Test(h); err != nil {
			return 0, err
		}
		best := time.Duration(0)
		for r := 0; r < cfg.Repeats; r++ {
			start := time.Now()
			if _, err := tester.Test(h); err != nil {
				return 0, err
			}
			d := time.Since(start)
			if r == 0 || d < best {
				best = d
			}
		}
		return float64(best.Microseconds()) / 1000.0, nil
	}

	singleSeries := Series{Name: "single testing"}
	multiSeries := Series{Name: "multi testing (optimised)"}
	for _, n := range cfg.HistorySizes {
		h, err := attack.GenHonest("server", n, 0.9, 1000, rng)
		if err != nil {
			return nil, err
		}
		ms, err := timed(single, h)
		if err != nil {
			return nil, fmt.Errorf("single n=%d: %w", n, err)
		}
		singleSeries.Points = append(singleSeries.Points, Point{X: float64(n), Y: ms})
		ms, err = timed(multi, h)
		if err != nil {
			return nil, fmt.Errorf("multi n=%d: %w", n, err)
		}
		multiSeries.Points = append(multiSeries.Points, Point{X: float64(n), Y: ms})
	}
	res.Series = append(res.Series, singleSeries, multiSeries)

	if len(cfg.NaiveSizes) > 0 {
		naiveSeries := Series{Name: "multi testing (naive O(n^2))"}
		for _, n := range cfg.NaiveSizes {
			h, err := attack.GenHonest("server", n, 0.9, 1000, rng)
			if err != nil {
				return nil, err
			}
			ms, err := timed(naive, h)
			if err != nil {
				return nil, fmt.Errorf("naive n=%d: %w", n, err)
			}
			naiveSeries.Points = append(naiveSeries.Points, Point{X: float64(n), Y: ms})
		}
		res.Series = append(res.Series, naiveSeries)
		res.Notes = append(res.Notes,
			"naive multi-testing is run only at smaller sizes; its quadratic growth makes 800k-transaction histories impractical, which is the point of the optimisation")
	}
	return res, nil
}
