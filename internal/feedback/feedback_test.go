package feedback

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func fb(s, c EntityID, r Rating, at int64) Feedback {
	return Feedback{Time: time.Unix(at, 0).UTC(), Server: s, Client: c, Rating: r}
}

func TestRating(t *testing.T) {
	if !Positive.Valid() || !Negative.Valid() {
		t.Error("defined ratings must be valid")
	}
	if Rating(0).Valid() || Rating(3).Valid() {
		t.Error("undefined ratings must be invalid")
	}
	if !Positive.Good() || Negative.Good() {
		t.Error("Good() wrong")
	}
	if Positive.String() != "positive" || Negative.String() != "negative" {
		t.Error("String() wrong")
	}
	if !strings.Contains(Rating(9).String(), "9") {
		t.Error("unknown rating String must include value")
	}
}

func TestFeedbackValidate(t *testing.T) {
	tests := []struct {
		name string
		f    Feedback
		want error
	}{
		{"valid", fb("s", "c", Positive, 1), nil},
		{"bad rating", fb("s", "c", Rating(0), 1), ErrInvalidRating},
		{"empty server", fb("", "c", Positive, 1), ErrEmptyEntity},
		{"empty client", fb("s", "", Positive, 1), ErrEmptyEntity},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.f.Validate()
			if tt.want == nil && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if tt.want != nil && !errors.Is(err, tt.want) {
				t.Fatalf("Validate() = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestFeedbackGoodAndString(t *testing.T) {
	f := fb("srv", "cli", Positive, 0)
	if !f.Good() {
		t.Error("positive feedback must be good")
	}
	s := f.String()
	for _, sub := range []string{"srv", "cli", "positive"} {
		if !strings.Contains(s, sub) {
			t.Errorf("String() = %q missing %q", s, sub)
		}
	}
}
