// Package honestplayer is a Go implementation of the honest-player
// behaviour model for reputation systems from "On the Modeling of Honest
// Players in Reputation Systems" (Zhang, Wei, Yu; ICDCS 2008 / JCST 2009).
//
// Reputation-based trust management predicts future behaviour from past
// feedback — an assumption adversaries break by adapting (hibernating and
// periodic attacks, collusion). This library implements the paper's
// two-phase defence:
//
//  1. Behaviour testing: a server's per-window good-transaction counts are
//     compared against the binomial distribution B(m, p̂) an honest player
//     would produce, using an L¹ distribution distance with an empirically
//     calibrated threshold (95 % confidence). Variants cover single tests,
//     multi-testing over history suffixes, and collusion-resilient testing
//     over issuer-reordered histories.
//  2. Trust functions: only servers that pass phase 1 receive a trust value
//     (average, weighted/EWMA, Beta, time-decay, sliding window).
//
// The package also ships the substrates a deployment needs: a deterministic
// statistics kit, a concurrent deduplicating feedback store, a TCP
// reputation server and client, gossip-based feedback dissemination for
// decentralised systems, adversary simulators, and the experiment harness
// that regenerates every figure of the paper's evaluation.
//
// # Quick start
//
//	h := honestplayer.NewHistory("seller-42")
//	// ... append feedback as transactions complete ...
//	tester, _ := honestplayer.NewMultiTester(honestplayer.TesterConfig{})
//	assessor, _ := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
//	ok, a, _ := assessor.Accept(h, 0.9)
//	if a.Suspicious {
//	    // transaction history inconsistent with the honest-player model
//	}
//
// See examples/ for runnable scenarios and DESIGN.md for the system map.
package honestplayer

import (
	"context"
	"time"

	"honestplayer/internal/attack"
	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/eigentrust"
	"honestplayer/internal/feedback"
	"honestplayer/internal/gossip"
	"honestplayer/internal/ledger"
	"honestplayer/internal/repclient"
	"honestplayer/internal/repserver"
	"honestplayer/internal/service"
	"honestplayer/internal/sim"
	"honestplayer/internal/stats"
	"honestplayer/internal/store"
	"honestplayer/internal/trust"
)

// Data model (package feedback).
type (
	// Feedback is one rating tuple (time, server, client, rating).
	Feedback = feedback.Feedback
	// EntityID identifies a server or client.
	EntityID = feedback.EntityID
	// Rating is the client's evaluation of a transaction.
	Rating = feedback.Rating
	// History is a server's append-only transaction history.
	History = feedback.History
)

// Rating values.
const (
	Positive = feedback.Positive
	Negative = feedback.Negative
)

// NewHistory returns an empty history for a server.
func NewHistory(server EntityID) *History { return feedback.NewHistory(server) }

// Trust functions (package trust).
type (
	// TrustFunc maps a history to a trust value in [0, 1].
	TrustFunc = trust.Func
	// Average is the good-transaction ratio.
	Average = trust.Average
	// Weighted is the EWMA trust function R_t = λf_t + (1−λ)R_{t−1}.
	Weighted = trust.Weighted
	// Beta is the Beta reputation system's posterior mean.
	Beta = trust.Beta
	// TimeDecay weights feedback geometrically by age.
	TimeDecay = trust.TimeDecay
	// SlidingWindow averages only the most recent W transactions.
	SlidingWindow = trust.SlidingWindow
)

// NewWeighted returns the weighted trust function with the given λ.
func NewWeighted(lambda float64) (Weighted, error) { return trust.NewWeighted(lambda) }

// Behaviour testing (package behavior).
type (
	// Tester decides whether a history fits the honest-player model.
	Tester = behavior.Tester
	// TesterConfig parameterises testers (window size m, multi-test stride,
	// minimum windows, threshold calibrator).
	TesterConfig = behavior.Config
	// TestVerdict is a behaviour-test outcome with per-suffix detail.
	TestVerdict = behavior.Verdict
	// SuffixResult is the distribution-test outcome over one suffix.
	SuffixResult = behavior.SuffixResult
)

// ErrInsufficientHistory reports a history too short to behaviour-test.
var ErrInsufficientHistory = behavior.ErrInsufficientHistory

// NewSingleTester returns the Scheme-1 tester (one test over the whole
// history).
func NewSingleTester(cfg TesterConfig) (Tester, error) { return behavior.NewSingle(cfg) }

// NewMultiTester returns the Scheme-2 tester (the history and every recent
// suffix, with the O(n) incremental optimisation).
func NewMultiTester(cfg TesterConfig) (Tester, error) { return behavior.NewMulti(cfg) }

// NewCollusionTester returns the collusion-resilient single tester
// (issuer-reordered history).
func NewCollusionTester(cfg TesterConfig) (Tester, error) { return behavior.NewCollusion(cfg) }

// NewCollusionMultiTester returns the collusion-resilient multi tester.
func NewCollusionMultiTester(cfg TesterConfig) (Tester, error) {
	return behavior.NewCollusionMulti(cfg)
}

// MultiValueTester is the §3.1 multinomial extension for ratings with more
// than two levels.
type MultiValueTester = behavior.MultiValue

// NewMultiValueTester returns a tester for rating levels in [0, levels).
func NewMultiValueTester(cfg TesterConfig, levels int) (*MultiValueTester, error) {
	return behavior.NewMultiValue(cfg, levels)
}

// PartitionFunc assigns a transaction to a category for partitioned
// testing.
type PartitionFunc = behavior.PartitionFunc

// CategoryVerdict is one category's outcome within a partitioned test.
type CategoryVerdict = behavior.CategoryVerdict

// PartitionedTester applies an inner tester per transaction category (the
// §3.1/§4 temporal / regional extension).
type PartitionedTester = behavior.Partitioned

// NewPartitionedTester wraps an inner tester with a category partition.
func NewPartitionedTester(inner Tester, partition PartitionFunc) (*PartitionedTester, error) {
	return behavior.NewPartitioned(inner, partition)
}

// PiecewiseTester tests each fixed-length segment of the history against
// its own B(m, p̂) — the §3.1 "dynamic cases" extension tolerating slow
// drift in an honest player's quality.
type PiecewiseTester = behavior.Piecewise

// NewPiecewiseTester returns a piecewise-stationary tester with segments of
// segmentLen transactions.
func NewPiecewiseTester(cfg TesterConfig, segmentLen int) (*PiecewiseTester, error) {
	return behavior.NewPiecewise(cfg, segmentLen)
}

// CUSUM is an online change-point detector: O(1) per transaction, fastest
// possible reaction to sharp quality drops. It complements the distribution
// tests, which catch mean-preserving shape manipulation instead.
type CUSUM = behavior.CUSUM

// NewCUSUM returns a detector for a drop from success probability p0 to p1
// alarming at cumulative log-likelihood h.
func NewCUSUM(p0, p1, h float64) (*CUSUM, error) { return behavior.NewCUSUM(p0, p1, h) }

// Two-phase assessment (package core).
type (
	// TwoPhase combines a behaviour tester (phase 1) with a trust function
	// (phase 2).
	TwoPhase = core.TwoPhase
	// Assessment is a two-phase assessment outcome.
	Assessment = core.Assessment
	// ShortHistoryPolicy decides how untestable (short) histories are
	// handled.
	ShortHistoryPolicy = core.ShortHistoryPolicy
)

// Short-history policies.
const (
	RejectShort = core.RejectShort
	AllowShort  = core.AllowShort
)

// NewTwoPhase builds a two-phase assessor; a nil tester degenerates to the
// bare trust function (the paper's baseline).
func NewTwoPhase(tester Tester, fn TrustFunc, opts ...core.Option) (*TwoPhase, error) {
	return core.NewTwoPhase(tester, fn, opts...)
}

// Monitor re-assesses a server continuously as transactions arrive.
type Monitor = core.Monitor

// MonitorAlert records a change in a monitored server's status.
type MonitorAlert = core.Alert

// NewMonitor creates a continuous monitor for one server; interval is the
// number of transactions between re-assessments.
func NewMonitor(assessor *TwoPhase, server EntityID, interval int, threshold float64) (*Monitor, error) {
	return core.NewMonitor(assessor, server, interval, threshold)
}

// WithShortHistoryPolicy overrides the default RejectShort policy.
func WithShortHistoryPolicy(p ShortHistoryPolicy) core.Option {
	return core.WithShortHistoryPolicy(p)
}

// Statistics kit (package stats).
type (
	// RNG is the deterministic random generator all simulations use.
	RNG = stats.RNG
	// Binomial is the honest-player window distribution B(n, p).
	Binomial = stats.Binomial
	// Calibrator caches Monte-Carlo-calibrated distance thresholds.
	Calibrator = stats.Calibrator
	// CalibrationConfig tunes threshold calibration.
	CalibrationConfig = stats.CalibrationConfig
)

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// NewBinomial returns the distribution B(n, p).
func NewBinomial(n int, p float64) (*Binomial, error) { return stats.NewBinomial(n, p) }

// NewCalibrator returns a caching threshold calibrator (pResolution 0 means
// 0.01).
func NewCalibrator(cfg CalibrationConfig, pResolution float64) *Calibrator {
	return stats.NewCalibrator(cfg, pResolution)
}

// Adversary models (package attack).
type (
	// StrategicAttacker is the white-box adaptive attacker of §5.1.
	StrategicAttacker = attack.Strategic
	// ColludingAttacker is the collusion attacker of §5.2.
	ColludingAttacker = attack.Colluding
	// AttackCost accounts what an attack run cost the adversary.
	AttackCost = attack.Cost
	// ClientSource supplies arriving clients to a colluding attacker.
	ClientSource = attack.ClientSource
)

// Attack-history generators.
var (
	// GenHibernating builds prep-then-burst histories.
	GenHibernating = attack.GenHibernating
	// GenPeriodic builds attack-window histories (Fig. 7 workload).
	GenPeriodic = attack.GenPeriodic
	// GenCheatAndRun builds the cheat-and-run pattern.
	GenCheatAndRun = attack.GenCheatAndRun
	// GenHonest builds honest multi-client histories.
	GenHonest = attack.GenHonest
	// PrepareHistory builds an attacker's honest preparation phase.
	PrepareHistory = attack.PrepareHistory
	// PrepareByColluders builds a colluder-backed preparation phase.
	PrepareByColluders = attack.PrepareByColluders
)

// Simulation (package sim).
type (
	// Population is the §5.2 client-arrival model (a₁·p / a₂ / a₃).
	Population = sim.Population
	// ScenarioConfig describes a marketplace simulation.
	ScenarioConfig = sim.Config
	// ServerSpec describes one provider in a scenario.
	ServerSpec = sim.ServerSpec
	// ScenarioMetrics aggregates a scenario run.
	ScenarioMetrics = sim.Metrics
)

// Server kinds for scenarios.
const (
	HonestServer      = sim.Honest
	HibernatingServer = sim.Hibernating
	PeriodicServer    = sim.Periodic
	ColludingProvider = sim.Colluding
)

// NewPopulation builds the arrival model (zero a-parameters select the
// paper's defaults a₁=0.5, a₂=0.9, a₃=0.2).
func NewPopulation(prefix string, n int, a1, a2, a3 float64, rng *RNG) (*Population, error) {
	return sim.NewPopulation(prefix, n, a1, a2, a3, rng)
}

// RunScenario simulates a marketplace under the given assessor.
func RunScenario(cfg ScenarioConfig, assessor *TwoPhase) (*ScenarioMetrics, error) {
	return sim.Run(cfg, assessor)
}

// EigenTrust global reputation aggregation (the classic P2P baseline,
// reference [3] of the paper).
type (
	// EigenTrustGraph accumulates pairwise local trust.
	EigenTrustGraph = eigentrust.Graph
	// EigenTrustConfig tunes the power iteration.
	EigenTrustConfig = eigentrust.Config
	// EigenTrustResult carries the converged global trust vector.
	EigenTrustResult = eigentrust.Result
)

// NewEigenTrustGraph returns an empty local-trust graph.
func NewEigenTrustGraph() *EigenTrustGraph { return eigentrust.NewGraph() }

// ComputeEigenTrust runs the EigenTrust power iteration on the graph.
func ComputeEigenTrust(g *EigenTrustGraph, cfg EigenTrustConfig) (*EigenTrustResult, error) {
	return eigentrust.Compute(g, cfg)
}

// WilsonInterval bounds a Bernoulli success probability (e.g. a trust
// ratio) with the Wilson score interval at normal quantile z.
func WilsonInterval(good, n int, z float64) (lo, hi float64, err error) {
	return stats.WilsonInterval(good, n, z)
}

// Networked deployments (packages store, repserver, repclient, gossip,
// service).
type (
	// FeedbackStore is the concurrent deduplicating record store.
	FeedbackStore = store.Store
	// Server is the TCP reputation server (central deployment).
	Server = repserver.Server
	// ServerConfig parameterises the reputation server (request timeout,
	// drain grace period, slow-request logging, caching, …).
	ServerConfig = repserver.Config
	// ServerStats is the server's counter snapshot, including per-type
	// request/error counts and latency quantiles from the service layer.
	ServerStats = repserver.Stats
	// Client is the reputation-server client. Every method has a
	// context-taking variant (PingCtx, AssessCtx, …) that derives the
	// round-trip deadline from the context.
	Client = repclient.Client
	// GossipNode disseminates feedback by anti-entropy (P2P deployment).
	GossipNode = gossip.Node
	// GossipConfig parameterises a gossip node.
	GossipConfig = gossip.Config
	// ServiceMetrics aggregates per-request-type counters and latency
	// histograms for any transport built on the service layer.
	ServiceMetrics = service.Metrics
)

// ErrConnBroken reports a client connection poisoned by a transport
// failure (timeout, desynchronised stream) that could not be transparently
// re-established; see repclient.
var ErrConnBroken = repclient.ErrConnBroken

// WithClientTimeout overrides the client's default per-request timeout
// (also the dial timeout).
func WithClientTimeout(d time.Duration) repclient.Option { return repclient.WithTimeout(d) }

// NewStore returns an empty feedback store.
func NewStore() *FeedbackStore { return store.New() }

// NewShardedStore returns an empty feedback store with an explicit shard
// count; writes to different servers on different shards never contend.
func NewShardedStore(shards int) *FeedbackStore { return store.NewSharded(shards) }

// Ledger is an append-only durable feedback log.
type Ledger = ledger.Ledger

// PersistentStore couples a feedback store with a ledger file: records
// survive restarts.
type PersistentStore = ledger.PersistentStore

// OpenLedger opens (creating if needed) a ledger file and returns it with
// the replayed records.
func OpenLedger(path string) (*Ledger, []Feedback, error) { return ledger.Open(path) }

// OpenPersistentStore opens a ledger-backed feedback store.
func OpenPersistentStore(path string) (*PersistentStore, error) { return ledger.OpenStore(path) }

// LedgerOptions configures a persistent store open: shard count, segment
// roll-over size, snapshot cadence, and incremental-accumulator capture.
type LedgerOptions = ledger.Options

// OpenPersistentStoreOptions opens a ledger-backed feedback store with
// explicit persistence options (segmented ledger, snapshot-on-boot).
func OpenPersistentStoreOptions(ctx context.Context, path string, opts LedgerOptions) (*PersistentStore, error) {
	return ledger.OpenStoreOptions(ctx, path, opts)
}

// NewServer creates a reputation server listening on addr.
func NewServer(addr string, cfg ServerConfig) (*Server, error) { return repserver.New(addr, cfg) }

// DialServer connects to a reputation server.
func DialServer(addr string, opts ...repclient.Option) (*Client, error) {
	return repclient.Dial(addr, opts...)
}

// NewGossipNode creates a gossip node listening on addr.
func NewGossipNode(addr string, cfg GossipConfig) (*GossipNode, error) {
	return gossip.New(addr, cfg)
}
