package assesscache

import (
	"fmt"
	"sync"
	"testing"

	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
)

func res(trust float64) Result {
	return Result{Assessment: core.Assessment{Server: "s", Trust: trust}, Accept: trust >= 0.5}
}

func TestCacheHitRequiresExactVersion(t *testing.T) {
	c := New(8)
	c.Put("s", 3, 0.5, res(0.9))

	got, ok := c.Get("s", 3, 0.5)
	if !ok || got.Assessment.Trust != 0.9 || !got.Accept {
		t.Fatalf("hit = %v %+v", ok, got)
	}
	// A write bumped the version: the stale entry must not survive.
	if _, ok := c.Get("s", 4, 0.5); ok {
		t.Fatal("stale entry served after version bump")
	}
	// And it was dropped, not just skipped.
	if c.Len() != 0 {
		t.Fatalf("stale entry retained, len = %d", c.Len())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheDistinguishesThresholds(t *testing.T) {
	c := New(8)
	c.Put("s", 1, 0.5, res(0.6))
	if _, ok := c.Get("s", 1, 0.9); ok {
		t.Fatal("different threshold must miss")
	}
	if _, ok := c.Get("s", 1, 0.5); !ok {
		t.Fatal("same threshold must hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1, 0.5, res(0.1))
	c.Put("b", 1, 0.5, res(0.2))
	// Touch "a" so "b" is the eviction victim.
	if _, ok := c.Get("a", 1, 0.5); !ok {
		t.Fatal("a must hit")
	}
	c.Put("c", 1, 0.5, res(0.3))
	if _, ok := c.Get("b", 1, 0.5); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a", 1, 0.5); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("c", 1, 0.5); !ok {
		t.Fatal("c should be present")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCachePutReplacesInPlace(t *testing.T) {
	c := New(2)
	c.Put("a", 1, 0.5, res(0.1))
	c.Put("a", 2, 0.5, res(0.8))
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	got, ok := c.Get("a", 2, 0.5)
	if !ok || got.Assessment.Trust != 0.8 {
		t.Fatalf("replaced entry: %v %+v", ok, got)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				srv := feedback.EntityID(fmt.Sprintf("s%d", i%100))
				c.Put(srv, uint64(i), 0.5, res(0.5))
				c.Get(srv, uint64(i), 0.5)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}
