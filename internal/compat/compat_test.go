package compat

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/repclient"
	"honestplayer/internal/repserver"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
	"honestplayer/internal/wire"
)

// serverMode is one server wire configuration of the matrix.
type serverMode struct {
	name      string
	disableV2 bool
}

// clientMode is one client protocol selection of the matrix.
type clientMode struct {
	name  string
	proto repclient.Proto
}

var serverModes = []serverMode{
	{name: "v2", disableV2: false},
	{name: "json", disableV2: true},
}

var clientModes = []clientMode{
	{name: "json", proto: repclient.ProtoJSON},
	{name: "auto", proto: repclient.ProtoAuto},
	{name: "v2", proto: repclient.ProtoV2},
}

// wantProtocol is the matrix's expectation table: the protocol each cell
// must negotiate, or "" when the dial itself must fail (a v2-required
// client against a JSON-only server has nothing to fall back to).
func wantProtocol(c clientMode, s serverMode) string {
	switch {
	case c.proto == repclient.ProtoJSON:
		return "json"
	case s.disableV2 && c.proto == repclient.ProtoV2:
		return ""
	case s.disableV2:
		return "json"
	default:
		return "v2"
	}
}

// TestCompatMatrix runs every client×server cell. CI shards the matrix by
// setting COMPAT_CLIENT and/or COMPAT_SERVER to a mode name; unset means
// every mode runs.
func TestCompatMatrix(t *testing.T) {
	cFilter := os.Getenv("COMPAT_CLIENT")
	sFilter := os.Getenv("COMPAT_SERVER")
	ran := false
	for _, sm := range serverModes {
		for _, cm := range clientModes {
			if (cFilter != "" && cFilter != cm.name) || (sFilter != "" && sFilter != sm.name) {
				continue
			}
			ran = true
			sm, cm := sm, cm
			t.Run(fmt.Sprintf("%s_client_vs_%s_server", cm.name, sm.name), func(t *testing.T) {
				runCell(t, cm, sm)
			})
		}
	}
	if !ran {
		t.Fatalf("COMPAT_CLIENT=%q COMPAT_SERVER=%q selects no cell", cFilter, sFilter)
	}
}

// history builds a deterministic per-server workload: 19 good transactions
// out of every 20, spread over 25 clients.
func history(server feedback.EntityID, n int) []feedback.Feedback {
	recs := make([]feedback.Feedback, n)
	for i := range recs {
		r := feedback.Positive
		if i%20 == 19 {
			r = feedback.Negative
		}
		recs[i] = feedback.Feedback{
			Time:   time.Unix(int64(i), 0).UTC(),
			Server: server,
			Client: feedback.EntityID(fmt.Sprintf("c%d", i%25)),
			Rating: r,
		}
	}
	return recs
}

// startServer builds one full serving stack — multi-scheme behaviour tester,
// average trust — in the given wire configuration, seeded with two servers'
// histories.
func startServer(t *testing.T, sm serverMode) (*repserver.Server, []feedback.EntityID) {
	t.Helper()
	tester, err := behavior.NewMulti(behavior.Config{
		Calibrator: stats.NewCalibrator(stats.CalibrationConfig{Seed: 1, Replicates: 200}, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	assessor, err := core.NewTwoPhase(tester, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := repserver.New("127.0.0.1:0", repserver.Config{
		Assessor:  assessor,
		DisableV2: sm.disableV2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	servers := []feedback.EntityID{"compat-a", "compat-b"}
	for _, sv := range servers {
		if _, err := srv.Seed(history(sv, 100)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	return srv, servers
}

// runCell drives the full request surface through one client×server pairing
// and checks every verdict against the server's in-process reference answer,
// so a codec that decodes to the wrong value — not just one that errors —
// fails the cell.
func runCell(t *testing.T, cm clientMode, sm serverMode) {
	srv, servers := startServer(t, sm)
	want := wantProtocol(cm, sm)

	client, err := repclient.Dial(srv.Addr(),
		repclient.WithProtocol(cm.proto), repclient.WithTimeout(5*time.Second))
	if want == "" {
		if err == nil {
			_ = client.Close()
			t.Fatalf("dial succeeded; want failure (%s client cannot speak to %s server)", cm.name, sm.name)
		}
		if !errors.Is(err, wire.ErrNotV2) {
			t.Fatalf("dial err = %v, want wire.ErrNotV2", err)
		}
		return
	}
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() { _ = client.Close() }()
	if got := client.Protocol(); got != want {
		t.Fatalf("negotiated %q, want %q", got, want)
	}

	if err := client.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	// Submit: a fresh record stores, resubmitting it deduplicates, and an
	// invalid record is rejected by the server with the typed protocol
	// error — on every framing (the v2 codec must carry even payloads its
	// binary form refuses, so the server stays the one rejecting them).
	fresh := feedback.Feedback{
		Time:   time.Unix(10_000, 0).UTC(),
		Server: servers[0],
		Client: "compat-client",
		Rating: feedback.Negative,
	}
	if stored, err := client.Submit(fresh); err != nil || !stored {
		t.Fatalf("submit fresh: stored=%v err=%v", stored, err)
	}
	if stored, err := client.Submit(fresh); err != nil || stored {
		t.Fatalf("submit duplicate: stored=%v err=%v, want false, nil", stored, err)
	}
	var protoErr *wire.ErrorResponse
	if _, err := client.Submit(feedback.Feedback{Server: servers[0], Client: "x"}); !errors.As(err, &protoErr) || protoErr.Code != wire.CodeInvalidFeedback {
		t.Fatalf("submit invalid: err = %v, want code %s", err, wire.CodeInvalidFeedback)
	}

	// Batch submit: one new record, one duplicate of the fresh record.
	batch := []feedback.Feedback{
		{Time: time.Unix(10_001, 0).UTC(), Server: servers[1], Client: "compat-client", Rating: feedback.Positive},
		fresh,
	}
	if stored, dups, err := client.SubmitBatch(batch); err != nil || stored != 1 || dups != 1 {
		t.Fatalf("submit batch: stored=%d dups=%d err=%v, want 1, 1, nil", stored, dups, err)
	}

	// History: the seeded 100 records plus the one submitted above.
	if recs, total, err := client.History(servers[0], 5); err != nil || total != 101 || len(recs) != 5 {
		t.Fatalf("history: len=%d total=%d err=%v, want 5, 101, nil", len(recs), total, err)
	}

	// Assess: every verdict must equal the server's in-process answer —
	// the wire (either framing) must neither perturb nor lose fidelity.
	ctx := context.Background()
	const threshold = 0.9
	for _, sv := range servers {
		ref, err := srv.Assess(ctx, wire.AssessRequest{Server: sv, Threshold: threshold})
		if err != nil {
			t.Fatalf("reference assess %s: %v", sv, err)
		}
		got, err := client.Assess(sv, threshold)
		if err != nil {
			t.Fatalf("assess %s: %v", sv, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("assess %s over %s wire:\n got %+v\nwant %+v", sv, client.Protocol(), got, ref)
		}
	}
	items, err := client.AssessBatch(servers, threshold)
	if err != nil {
		t.Fatalf("assess batch: %v", err)
	}
	if len(items) != len(servers) {
		t.Fatalf("assess batch: %d items, want %d", len(items), len(servers))
	}
	for i, it := range items {
		ref, err := srv.Assess(ctx, wire.AssessRequest{Server: servers[i], Threshold: threshold})
		if err != nil {
			t.Fatalf("reference assess %s: %v", servers[i], err)
		}
		if it.Error != nil {
			t.Fatalf("assess batch %s: %+v", servers[i], it.Error)
		}
		if !reflect.DeepEqual(it.AssessResponse, ref) {
			t.Fatalf("assess batch %s over %s wire:\n got %+v\nwant %+v", servers[i], client.Protocol(), it.AssessResponse, ref)
		}
	}

	// The server must agree about which framing the connection negotiated.
	st := srv.Stats()
	if want == "v2" && st.V2Connections == 0 {
		t.Fatal("server counted no v2 connections for a v2 client")
	}
	if want == "json" && st.V2Connections != 0 {
		t.Fatalf("server counted %d v2 connections for a JSON client", st.V2Connections)
	}
}
