package main

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"time"

	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/repclient"
	"honestplayer/internal/repserver"
	"honestplayer/internal/trust"
)

// The wire-protocol benchmark compares the two transports a client can run
// the same assess workload over:
//
//   - json: the v1 protocol — newline-delimited JSON frames, one lock-step
//     connection, each request paying a full round trip before the next
//     starts (byte-for-byte the pre-v2 client).
//   - v2: the binary protocol — length-prefixed frames with compact binary
//     payloads, one pipelined connection shared by concurrent workers, up to
//     a window of requests in flight with responses demultiplexed by id.
//
// Both transports drive the identical workload against the same server
// build: assess each of N seeded servers R times per pass. The server runs
// the incremental engine with the assessment cache off and the trust-only
// two-phase assessor, so every request reads live accumulator state and the
// per-request cost is dominated by the wire — exactly the regime the v2
// transport exists for. The store is frozen during timed passes, which also
// lets the differential check compare per-server responses across
// transports on identical state. The median of three timed passes is
// reported per transport, mirroring -incrbench and -batchbench.

// wireBenchSize is one workload scale of the comparison.
type wireBenchSize struct {
	Servers int // distinct servers assessed per sweep
	History int // seeded records per server
	Rounds  int // assessments of every server per pass
	Warmup  int // unmeasured sweeps per transport
}

// wireSizeResult is the per-size outcome. The ns figures are per request
// (one assess round trip).
type wireSizeResult struct {
	Servers          int     `json:"servers"`
	History          int     `json:"history"`
	Requests         int     `json:"requests_per_pass"`
	JSONNsPerReq     float64 `json:"json_lockstep_ns_per_req"`
	V2NsPerReq       float64 `json:"v2_mux_ns_per_req"`
	Speedup          float64 `json:"speedup"`
	AssessmentsMatch bool    `json:"assessments_match"`
}

// wireBenchReport is the JSON document the -wirebench mode emits.
type wireBenchReport struct {
	Description string           `json:"description"`
	Command     string           `json:"command"`
	Environment map[string]any   `json:"environment"`
	Config      map[string]any   `json:"config"`
	Sizes       []wireSizeResult `json:"sizes"`
	Acceptance  string           `json:"acceptance"`
}

// wireWorkers is how many goroutines share the v2 connection. Throughput
// rises with in-flight depth (each flush round trip amortises over the
// requests in flight), so it sits near — but below — the client's window,
// leaving headroom so no worker ever blocks on a slot.
const wireWorkers = 48

// wireMeasure runs both transports at one scale against a shared server and
// returns the per-request medians plus the cross-transport differential.
func wireMeasure(size wireBenchSize) (wireSizeResult, error) {
	res := wireSizeResult{
		Servers:  size.Servers,
		History:  size.History,
		Requests: size.Servers * size.Rounds,
	}
	assessor, err := core.NewTwoPhase(nil, trust.Average{})
	if err != nil {
		return res, err
	}
	srv, err := repserver.New("127.0.0.1:0", repserver.Config{
		Assessor:    assessor,
		Incremental: true,
	})
	if err != nil {
		return res, err
	}
	defer srv.Close()
	servers := make([]feedback.EntityID, size.Servers)
	for i := range servers {
		servers[i] = feedback.EntityID(fmt.Sprintf("srv-%03d", i))
		if _, err := srv.Seed(incrHistory(servers[i], size.History)); err != nil {
			return res, err
		}
	}
	srv.Start()

	jsonClient, err := repclient.Dial(srv.Addr(),
		repclient.WithProtocol(repclient.ProtoJSON), repclient.WithTimeout(30*time.Second))
	if err != nil {
		return res, err
	}
	defer func() { _ = jsonClient.Close() }()
	v2Client, err := repclient.Dial(srv.Addr(),
		repclient.WithProtocol(repclient.ProtoV2), repclient.WithTimeout(30*time.Second))
	if err != nil {
		return res, err
	}
	defer func() { _ = v2Client.Close() }()
	if got := v2Client.Protocol(); got != "v2" {
		return res, fmt.Errorf("v2 client negotiated %q", got)
	}

	// One sweep = assess every server Rounds times. The JSON transport runs
	// it lock-step; the v2 transport fans the same request list out over
	// workers sharing the one pipelined connection.
	jsonSweep := func() (time.Duration, error) {
		start := time.Now()
		for r := 0; r < size.Rounds; r++ {
			for _, sv := range servers {
				if _, err := jsonClient.Assess(sv, 0.9); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(start), nil
	}
	v2Sweep := func() (time.Duration, error) {
		jobs := make(chan feedback.EntityID, wireWorkers)
		errs := make(chan error, wireWorkers)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < wireWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for sv := range jobs {
					if _, err := v2Client.Assess(sv, 0.9); err != nil {
						select {
						case errs <- err:
						default:
						}
						return
					}
				}
			}()
		}
		for r := 0; r < size.Rounds; r++ {
			for _, sv := range servers {
				jobs <- sv
			}
		}
		close(jobs)
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errs:
			return 0, err
		default:
		}
		return elapsed, nil
	}

	// Fresh state once, then freeze it for the whole measurement so both
	// transports assess identical histories.
	next := int64(1 << 30)
	for _, sv := range servers {
		next++
		if _, err := srv.Store().Add(feedback.Feedback{
			Time:   time.Unix(next, 0).UTC(),
			Server: sv,
			Client: feedback.EntityID(fmt.Sprintf("c%d", int(next)%25)),
			Rating: feedback.Positive,
		}); err != nil {
			return res, err
		}
	}
	for i := 0; i < size.Warmup; i++ {
		if _, err := jsonSweep(); err != nil {
			return res, err
		}
		if _, err := v2Sweep(); err != nil {
			return res, err
		}
	}
	const passes = 3
	reqs := float64(size.Servers * size.Rounds)
	jsonNs := make([]float64, 0, passes)
	v2Ns := make([]float64, 0, passes)
	for p := 0; p < passes; p++ {
		j, err := jsonSweep()
		if err != nil {
			return res, err
		}
		v, err := v2Sweep()
		if err != nil {
			return res, err
		}
		jsonNs = append(jsonNs, float64(j.Nanoseconds())/reqs)
		v2Ns = append(v2Ns, float64(v.Nanoseconds())/reqs)
	}
	sort.Float64s(jsonNs)
	sort.Float64s(v2Ns)
	res.JSONNsPerReq = jsonNs[passes/2]
	res.V2NsPerReq = v2Ns[passes/2]
	res.Speedup = float64(int(res.JSONNsPerReq/res.V2NsPerReq*100)) / 100

	// Differential check: on the frozen store, every server's assessment
	// must decode identically over both transports — the binary codec and
	// the JSON codec carry the same protocol.
	res.AssessmentsMatch = true
	for _, sv := range servers {
		jr, err := jsonClient.Assess(sv, 0.9)
		if err != nil {
			return res, err
		}
		vr, err := v2Client.Assess(sv, 0.9)
		if err != nil {
			return res, err
		}
		if !reflect.DeepEqual(jr, vr) {
			res.AssessmentsMatch = false
		}
	}
	return res, nil
}

// runWireBench executes the full json-vs-v2 comparison, writes the JSON
// report, and (when minSpeedup > 0) fails unless every size reaches the
// gate with matching assessments.
func runWireBench(out io.Writer, quick bool, minSpeedup float64) error {
	sizes := []wireBenchSize{
		{Servers: 32, History: 1000, Rounds: 120, Warmup: 2},
		{Servers: 64, History: 10000, Rounds: 60, Warmup: 2},
	}
	if quick {
		sizes = []wireBenchSize{{Servers: 16, History: 500, Rounds: 6, Warmup: 1}}
	}
	report := wireBenchReport{
		Description: "Per-request latency of the same assess workload over the v1 JSON lock-step transport vs the binary v2 pipelined transport. Both clients drive one shared server (incremental engine on, assessment cache off, trust-only assessor) over real TCP; the v2 client fans the request list out over workers sharing one multiplexed connection. The store is frozen during timed passes and the median of three passes is reported; the differential check decodes every server's assessment over both transports on identical state.",
		Command:     "go run ./cmd/reprobench -wirebench > BENCH_wire.json",
		Environment: map[string]any{
			"go":   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"date": time.Now().UTC().Format("2006-01-02"),
		},
		Config: map[string]any{
			"trust":           "average",
			"tester":          "off (trust-only two-phase)",
			"incremental":     true,
			"assess_cache":    0,
			"v2_workers":      wireWorkers,
			"v2_window":       repclient.DefaultWindow,
			"passes":          3,
			"clients_per_srv": 25,
		},
		Acceptance: "v2 mux speedup must be >= 5 with matching assessments at every size (full workload)",
	}
	for _, size := range sizes {
		r, err := wireMeasure(size)
		if err != nil {
			return fmt.Errorf("servers=%d history=%d: %w", size.Servers, size.History, err)
		}
		report.Sizes = append(report.Sizes, r)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if minSpeedup > 0 {
		for _, r := range report.Sizes {
			if !r.AssessmentsMatch {
				return fmt.Errorf("differential check failed at servers=%d: transports disagree", r.Servers)
			}
			if r.Speedup < minSpeedup {
				return fmt.Errorf("speedup %.2f at servers=%d below gate %.2f", r.Speedup, r.Servers, minSpeedup)
			}
		}
	}
	return nil
}
