package store

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"honestplayer/internal/feedback"
)

func rec(s, c feedback.EntityID, good bool, at int64) feedback.Feedback {
	r := feedback.Negative
	if good {
		r = feedback.Positive
	}
	return feedback.Feedback{Time: time.Unix(at, 0).UTC(), Server: s, Client: c, Rating: r}
}

func TestHashOfDistinguishes(t *testing.T) {
	a := rec("s", "c", true, 1)
	tests := []feedback.Feedback{
		rec("s", "c", true, 2),  // time differs
		rec("s", "c", false, 1), // rating differs
		rec("s2", "c", true, 1), // server differs
		rec("s", "c2", true, 1), // client differs
	}
	for i, b := range tests {
		if HashOf(a) == HashOf(b) {
			t.Errorf("case %d: hash collision for distinct records", i)
		}
	}
	if HashOf(a) != HashOf(rec("s", "c", true, 1)) {
		t.Error("identical records must hash equal")
	}
}

func TestHashOfFieldBoundary(t *testing.T) {
	// ("ab","c") must differ from ("a","bc"): the separator matters.
	a := rec("ab", "c", true, 1)
	b := rec("a", "bc", true, 1)
	if HashOf(a) == HashOf(b) {
		t.Fatal("field-boundary hash collision")
	}
}

func TestStoreAddAndDedup(t *testing.T) {
	s := New()
	ok, err := s.Add(rec("srv", "c1", true, 1))
	if err != nil || !ok {
		t.Fatalf("first add: %v %v", ok, err)
	}
	ok, err = s.Add(rec("srv", "c1", true, 1))
	if err != nil || ok {
		t.Fatalf("duplicate add: %v %v", ok, err)
	}
	if s.Len() != 1 || s.ServerLen("srv") != 1 {
		t.Fatalf("len = %d / %d", s.Len(), s.ServerLen("srv"))
	}
}

func TestStoreAddInvalid(t *testing.T) {
	s := New()
	if _, err := s.Add(feedback.Feedback{}); err == nil {
		t.Fatal("invalid record must fail")
	}
}

func TestStoreTimeOrdering(t *testing.T) {
	s := New()
	// Insert out of order.
	for _, at := range []int64{5, 1, 3, 2, 4} {
		if _, err := s.Add(rec("srv", "c", at%2 == 0, at)); err != nil {
			t.Fatal(err)
		}
	}
	recs := s.Records("srv")
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			t.Fatalf("records out of order: %v", recs)
		}
	}
	h, err := s.History("srv")
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 5 {
		t.Fatalf("history len = %d", h.Len())
	}
}

func TestStoreHistoryUnknownServer(t *testing.T) {
	s := New()
	h, err := s.History("nobody")
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 0 {
		t.Fatal("unknown server must have empty history")
	}
}

func TestStoreServers(t *testing.T) {
	s := New()
	_, _ = s.Add(rec("b", "c", true, 1))
	_, _ = s.Add(rec("a", "c", true, 1))
	got := s.Servers()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Servers = %v", got)
	}
}

func TestStoreMissingFrom(t *testing.T) {
	s := New()
	r1 := rec("srv", "c1", true, 1)
	r2 := rec("srv", "c2", false, 2)
	_, _ = s.Add(r1)
	_, _ = s.Add(r2)
	missing := s.MissingFrom([]Hash{HashOf(r1)})
	if len(missing) != 1 || HashOf(missing[0]) != HashOf(r2) {
		t.Fatalf("MissingFrom = %v", missing)
	}
	if got := s.MissingFrom(s.Hashes()); len(got) != 0 {
		t.Fatalf("nothing should be missing: %v", got)
	}
	if got := s.MissingFrom(nil); len(got) != 2 {
		t.Fatalf("everything should be missing: %v", got)
	}
}

func TestStoreAddAll(t *testing.T) {
	s := New()
	recs := []feedback.Feedback{
		rec("srv", "c1", true, 1),
		rec("srv", "c1", true, 1), // dup
		rec("srv", "c2", false, 2),
	}
	added, err := s.AddAll(recs)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("added = %d", added)
	}
	// Error propagates with partial insert count.
	added, err = s.AddAll([]feedback.Feedback{rec("x", "c", true, 9), {}})
	if err == nil {
		t.Fatal("invalid record must fail")
	}
	if added != 1 {
		t.Fatalf("partial added = %d", added)
	}
}

func TestStoreConcurrentAdds(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, err := s.Add(rec("srv", feedback.EntityID(rune('a'+g)), i%2 == 0, int64(g*1000+i)))
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("len = %d, want 800", s.Len())
	}
	recs := s.Records("srv")
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			t.Fatal("concurrent inserts broke time ordering")
		}
	}
}

// Property: two stores that ingest the same multiset of records in
// different orders converge to identical state (the gossip convergence
// invariant).
func TestStoreOrderIndependence(t *testing.T) {
	f := func(raw []uint8) bool {
		recs := make([]feedback.Feedback, len(raw))
		for i, r := range raw {
			recs[i] = rec(
				feedback.EntityID(rune('s'+r%3)),
				feedback.EntityID(rune('a'+r%7)),
				r%2 == 0,
				int64(r),
			)
		}
		a, b := New(), New()
		if _, err := a.AddAll(recs); err != nil {
			return false
		}
		// Reverse order into b.
		for i := len(recs) - 1; i >= 0; i-- {
			if _, err := b.Add(recs[i]); err != nil {
				return false
			}
		}
		if a.Len() != b.Len() {
			return false
		}
		for _, srv := range a.Servers() {
			ra, rb := a.Records(srv), b.Records(srv)
			if len(ra) != len(rb) {
				return false
			}
			for i := range ra {
				if HashOf(ra[i]) != HashOf(rb[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
