package behavior

import (
	"fmt"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// Collusion implements the collusion-resilient behaviour testing of §4: the
// feedback sequence is re-ordered by issuer — groups with more feedbacks
// first, time order within a group — and the distribution test is run on the
// re-ordered sequence.
//
// For an honest player the feedback distribution of frequent clients
// resembles that of occasional clients, so the re-ordering is harmless. An
// attacker propped up by a small set of colluders ends up with long runs of
// all-positive windows (the colluders' groups) followed by the windows
// holding the cheated clients' feedback, which deviates from B(m, p̂).
type Collusion struct {
	inner Tester
	multi bool
	cfg   Config
}

var _ Tester = (*Collusion)(nil)

// NewCollusion returns a collusion-resilient tester running the Scheme-1
// single test on the issuer-re-ordered history.
func NewCollusion(cfg Config) (*Collusion, error) {
	single, err := NewSingle(cfg)
	if err != nil {
		return nil, err
	}
	return &Collusion{inner: single, cfg: single.Config()}, nil
}

// NewCollusionMulti returns a collusion-resilient multi-tester: suffixes of
// the most recent l−k, l−2k, … transactions (in original time order, as in
// §4) are each re-ordered by issuer and tested.
func NewCollusionMulti(cfg Config) (*Collusion, error) {
	single, err := NewSingle(cfg)
	if err != nil {
		return nil, err
	}
	return &Collusion{inner: single, multi: true, cfg: single.Config()}, nil
}

// Name implements Tester.
func (c *Collusion) Name() string {
	if c.multi {
		return "collusion-multi"
	}
	return "collusion"
}

// Test implements Tester.
func (c *Collusion) Test(h *feedback.History) (Verdict, error) {
	if !c.multi {
		return c.inner.Test(h.CollusionOrder())
	}
	cfg := c.cfg
	usable := (h.Len() / cfg.WindowSize) * cfg.WindowSize
	usableWindows := usable / cfg.WindowSize
	if usableWindows < cfg.MinWindows {
		return Verdict{}, fmt.Errorf("%w: %d windows < %d",
			ErrInsufficientHistory, usableWindows, cfg.MinWindows)
	}
	strideWindows := cfg.Stride / cfg.WindowSize
	numSuffixes := (usableWindows-cfg.MinWindows)/strideWindows + 1
	confidence := cfg.suffixConfidence(numSuffixes)
	v := Verdict{Honest: true}
	for n := usable; n/cfg.WindowSize >= cfg.MinWindows; n -= cfg.Stride {
		reordered := h.SuffixView(n).CollusionOrder()
		counts, err := reordered.WindowCountsFromEnd(cfg.WindowSize)
		if err != nil {
			return Verdict{}, err
		}
		hist := stats.MustHistogram(cfg.WindowSize)
		if err := hist.AddAll(counts); err != nil {
			return Verdict{}, err
		}
		res, err := testHistogram(cfg, hist, confidence)
		if err != nil {
			return Verdict{}, err
		}
		v.Suffixes = append(v.Suffixes, res)
		if !res.Pass {
			v.Honest = false
		}
	}
	return v, nil
}
