package behavior

import (
	"errors"
	"strings"
	"testing"

	"honestplayer/internal/stats"
)

// honestLevels draws an i.i.d. categorical sequence from probs.
func honestLevels(rng *stats.RNG, n int, probs []float64) []int {
	out := make([]int, n)
	for i := range out {
		u := rng.Float64()
		acc := 0.0
		for l, p := range probs {
			acc += p
			if u < acc {
				out[i] = l
				break
			}
			out[i] = len(probs) - 1
		}
	}
	return out
}

func TestNewMultiValueValidation(t *testing.T) {
	if _, err := NewMultiValue(testConfig(), 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("levels=1: %v", err)
	}
	if _, err := NewMultiValue(Config{WindowSize: 10, Stride: 7}, 3); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad stride: %v", err)
	}
	mv, err := NewMultiValue(testConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Levels() != 3 {
		t.Errorf("Levels = %d", mv.Levels())
	}
	if !strings.Contains(mv.Name(), "3") {
		t.Errorf("Name = %q", mv.Name())
	}
}

func TestMultiValueInsufficient(t *testing.T) {
	mv, err := NewMultiValue(testConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mv.TestLevels(make([]int, 30)); !errors.Is(err, ErrInsufficientHistory) {
		t.Errorf("short sequence: %v", err)
	}
}

func TestMultiValueRejectsOutOfRangeLevel(t *testing.T) {
	mv, err := NewMultiValue(testConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	seq := make([]int, 100)
	seq[50] = 7
	if _, err := mv.TestLevels(seq); !errors.Is(err, ErrBadConfig) {
		t.Errorf("out-of-range level: %v", err)
	}
	seq[50] = -1
	if _, err := mv.TestLevels(seq); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative level: %v", err)
	}
}

func TestMultiValueHonestPasses(t *testing.T) {
	mv, err := NewMultiValue(testConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// {positive, neutral, negative} with an honest 80/15/5 split.
	rng := stats.NewRNG(61)
	pass := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		seq := honestLevels(rng, 600, []float64{0.80, 0.15, 0.05})
		v, err := mv.TestLevels(seq)
		if err != nil {
			t.Fatal(err)
		}
		if len(v.Suffixes) != 3 {
			t.Fatalf("suffixes = %d, want one per level", len(v.Suffixes))
		}
		if v.Honest {
			pass++
		}
	}
	if pass < trials*8/10 {
		t.Fatalf("honest multi-value players passed only %d/%d", pass, trials)
	}
}

func TestMultiValueDetectsPeriodicPattern(t *testing.T) {
	mv, err := NewMultiValue(testConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic rotation: every window has exactly the same counts —
	// a point-mass distribution, not multinomial spread.
	seq := make([]int, 600)
	for i := range seq {
		switch {
		case i%10 == 0:
			seq[i] = 2 // one negative per window, always
		case i%10 == 1:
			seq[i] = 1 // one neutral per window, always
		default:
			seq[i] = 0
		}
	}
	v, err := mv.TestLevels(seq)
	if err != nil {
		t.Fatal(err)
	}
	if v.Honest {
		t.Fatalf("deterministic rotation passed: %+v", v.Worst())
	}
}

func TestMultiValueDegeneratesToBinary(t *testing.T) {
	// With 2 levels the multi-value test must agree directionally with the
	// binary single test: honest binary streams pass.
	mv, err := NewMultiValue(testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(67)
	seq := make([]int, 500)
	for i := range seq {
		if !rng.Bernoulli(0.9) {
			seq[i] = 1
		}
	}
	v, err := mv.TestLevels(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Honest {
		t.Fatalf("honest binary stream flagged: %+v", v.Worst())
	}
}
