package ledger

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"honestplayer/internal/feedback"
)

func rec(c feedback.EntityID, good bool, at int64) feedback.Feedback {
	r := feedback.Negative
	if good {
		r = feedback.Positive
	}
	return feedback.Feedback{Time: time.Unix(at, 0).UTC(), Server: "srv", Client: c, Rating: r}
}

func TestOpenEmptyAndAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh ledger replayed %d records", len(recs))
	}
	want := []feedback.Feedback{rec("a", true, 1), rec("b", false, 2), rec("c", true, 3)}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l2.Close() }()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Client != want[i].Client || got[i].Rating != want[i].Rating ||
			!got[i].Time.Equal(want[i].Time) {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestAppendValidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	if err := l.Append(feedback.Feedback{}); err == nil {
		t.Fatal("invalid record must fail")
	}
}

// activeSegPath returns the path of the ledger's current active segment.
// Tests that simulate crashes poke bytes into it directly.
func activeSegPath(t *testing.T, dir string) string {
	t.Helper()
	l := &Ledger{dir: dir}
	segs, err := l.listSegments()
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return l.segPath(segs[len(segs)-1])
}

func TestTornTrailingRecordRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Append(rec("a", true, 1))
	_ = l.Append(rec("b", true, 2))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: write a partial binary record.
	f, err := os.OpenFile(activeSegPath(t, path), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2", len(got))
	}
	// The torn bytes were truncated; a new append lands cleanly.
	if err := l2.Append(rec("c", true, 3)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("after recovery+append: %d records, want 3", len(got))
	}
}

func TestCorruptInteriorStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Append(rec("a", true, 1))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(activeSegPath(t, path), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = f.WriteString("GARBAGE BYTES THAT ARE NOT A RECORD\n")
	_ = f.Close()

	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1 (stop at corruption)", len(got))
	}
}

func TestClosedLedgerErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec("a", true, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	if err := l.Append(rec("a", true, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := l.Append(rec(feedback.EntityID(rune('a'+g)), true, int64(g*1000+i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 400 {
		t.Fatalf("replayed %d records, want 400", len(got))
	}
}

func TestPersistentStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	ps, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := ps.Add(rec("a", true, 1))
	if err != nil || !stored {
		t.Fatalf("add: %v %v", stored, err)
	}
	// Duplicates are not re-persisted.
	stored, err = ps.Add(rec("a", true, 1))
	if err != nil || stored {
		t.Fatalf("dup add: %v %v", stored, err)
	}
	_, _ = ps.Add(rec("b", false, 2))
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	ps2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ps2.Close() }()
	if ps2.Store().Len() != 2 {
		t.Fatalf("restored store has %d records, want 2", ps2.Store().Len())
	}
	h, err := ps2.Store().History("srv")
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 || h.GoodCount() != 1 {
		t.Fatalf("restored history: %v", h)
	}
}

func TestOpenStoreOnCorruptDir(t *testing.T) {
	if _, err := OpenStore(filepath.Join(t.TempDir(), "missing", "x.jsonl")); err == nil {
		t.Fatal("open in missing directory must fail")
	}
}

func TestOpenOnExistingDirectory(t *testing.T) {
	// A ledger path that is already a directory is a (possibly empty)
	// segmented ledger, not an error.
	dir := t.TempDir()
	l, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("empty directory replayed %d records", len(recs))
	}
	if err := l.Append(rec("a", true, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); err != nil {
		t.Fatalf("segment 1 missing: %v", err)
	}
}

func TestPersistentStoreAddAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "l.jsonl")
	ps, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	// The in-memory store still accepts the record, but persistence fails
	// loudly rather than silently dropping it.
	_, err = ps.Add(rec("a", true, 1))
	if err == nil {
		t.Fatal("Add after Close must report the persistence failure")
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed in chain", err)
	}
}

func TestPersistentStoreInvalidRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "l.jsonl")
	ps, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ps.Close() }()
	if _, err := ps.Add(feedback.Feedback{}); err == nil {
		t.Fatal("invalid record must fail")
	}
}

// legacyLine is one wire-compatible JSON record for building PR-7 format
// single-file ledgers.
func legacyLine(t *testing.T, f feedback.Feedback) []byte {
	t.Helper()
	raw, err := encodeJSONRecord(f)
	if err != nil {
		t.Fatal(err)
	}
	return append(raw, '\n')
}

func TestLegacyEmptyLinesSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "l.jsonl")
	var data []byte
	data = append(data, legacyLine(t, rec("a", true, 1))...)
	data = append(data, "\n\n"...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d", len(recs))
	}
	// Appending after blank lines still replays cleanly.
	_ = l2.Append(rec("b", true, 2))
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("after blank lines + append: %d", len(recs))
	}
}

// TestLegacyMigration proves a PR-7 single-file JSON ledger opens unchanged:
// the file becomes segment 1 of a directory with its bytes intact, replays
// fully, and keeps accepting (JSON) appends until its first roll-over.
func TestLegacyMigration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.jsonl")
	var want []byte
	recs := []feedback.Feedback{rec("a", true, 1), rec("b", false, 2), rec("c", true, 3)}
	for _, f := range recs {
		want = append(want, legacyLine(t, f)...)
	}
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}

	l, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		t.Fatalf("path did not become a ledger directory: %v %v", fi, err)
	}
	seg1 := filepath.Join(path, segmentName(1))
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(want) {
		t.Fatal("migration altered the legacy file's bytes")
	}

	// Appends continue in the legacy JSON encoding until roll-over.
	if err := l.Append(rec("d", true, 4)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:len(want)]) != string(want) {
		t.Fatal("append rewrote existing legacy bytes")
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("legacy segment append was not a JSON line")
	}

	_, got, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("after migration + append: replayed %d, want 4", len(got))
	}
}

// TestRollOverSealsAndUpgrades drives a ledger past its roll-over threshold
// and checks segments seal with verifiable footers, replay sees everything
// in order, and a migrated JSON segment's successor is binary.
func TestRollOverSealsAndUpgrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "roll")
	l, err := openLedger(path, 512) // tiny threshold to force roll-overs
	if err != nil {
		t.Fatal(err)
	}
	if err := l.replayFrom(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
	const total = 100
	for i := 0; i < total; i++ {
		if err := l.Append(rec(feedback.EntityID([]byte{'c', byte('a' + i%5)}), i%3 != 0, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if l.rolls == 0 {
		t.Fatal("no roll-over happened at a 512-byte threshold")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := (&Ledger{dir: path}).listSegments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments", len(segs))
	}
	for _, idx := range segs[:len(segs)-1] {
		data, err := os.ReadFile(filepath.Join(path, segmentName(idx)))
		if err != nil {
			t.Fatal(err)
		}
		sc, _ := scanSegment(data, nil)
		if !sc.sealed {
			t.Fatalf("segment %d not sealed", idx)
		}
		if sc.truncated != 0 {
			t.Fatalf("sealed segment %d reports %d truncated bytes", idx, sc.truncated)
		}
	}

	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("replayed %d records, want %d", len(got), total)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Fatal("replay out of order across segments")
		}
	}
}

// TestMigratedLedgerUpgradesOnRollOver: after a migrated JSON segment rolls
// over, new segments are binary and the full history still replays.
func TestMigratedLedgerUpgradesOnRollOver(t *testing.T) {
	path := filepath.Join(t.TempDir(), "upg.jsonl")
	var data []byte
	for i := 0; i < 5; i++ {
		data = append(data, legacyLine(t, rec("a", true, int64(i+1)))...)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := openLedger(path, 64) // below the existing file size: first append rolls over
	if err != nil {
		t.Fatal(err)
	}
	if err := l.replayFrom(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
	if l.segKind != segJSON {
		t.Fatal("migrated active segment should still be JSON")
	}
	for i := 5; i < 10; i++ {
		if err := l.Append(rec("a", true, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if l.segKind != segBinary {
		t.Fatal("post-roll-over segment should be binary")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
}

// TestCorruptSealedSegmentTruncatesSuffix: flipping bytes inside a sealed
// (non-final) segment must degrade the ledger to the longest verified
// prefix — later segments dropped, corrupted segment truncated and
// re-adopted as the active tail.
func TestCorruptSealedSegmentTruncatesSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt")
	l, err := openLedger(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.replayFrom(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := l.Append(rec("a", i%2 == 0, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := (&Ledger{dir: path}).listSegments()
	if err != nil || len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %v (%v)", segs, err)
	}

	// Count the intact records of segment 2's prefix before corrupting it.
	victim := filepath.Join(path, segmentName(2))
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	seg1Data, err := os.ReadFile(filepath.Join(path, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	sc1, _ := scanSegment(seg1Data, nil)
	mid := len(data) / 2
	data[mid] ^= 0xFF
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	scBad, _ := scanSegment(data, nil)
	if scBad.sealed || scBad.truncated == 0 {
		t.Fatal("corruption not detected by scan")
	}

	l2, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sc1.records + scBad.records
	if uint64(len(got)) != want {
		t.Fatalf("replayed %d records, want %d (seg1 %d + seg2 intact prefix %d)",
			len(got), want, sc1.records, scBad.records)
	}
	if l2.truncatedSegments == 0 || l2.truncatedBytes == 0 {
		t.Fatalf("truncation not accounted: %d segments, %d bytes",
			l2.truncatedSegments, l2.truncatedBytes)
	}
	if l2.segIndex != 2 {
		t.Fatalf("active segment = %d, want re-adopted 2", l2.segIndex)
	}
	// Later segments are gone; appends resume on the truncated segment.
	if _, err := os.Stat(filepath.Join(path, segmentName(3))); !os.IsNotExist(err) {
		t.Fatalf("segment 3 should have been dropped: %v", err)
	}
	if err := l2.Append(rec("a", true, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, got2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(got2)) != want+1 {
		t.Fatalf("after repair+append: %d records, want %d", len(got2), want+1)
	}
}

// TestKillDuringRollOver: a sealed highest-numbered segment (the crash
// window between sealing and creating the successor) must boot cleanly with
// a fresh segment after it.
func TestKillDuringRollOver(t *testing.T) {
	path := filepath.Join(t.TempDir(), "killroll")
	l, err := openLedger(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.replayFrom(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := l.Append(rec("a", true, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := (&Ledger{dir: path}).listSegments()
	if err != nil || len(segs) < 2 {
		t.Fatalf("need >=2 segments: %v %v", segs, err)
	}
	total := 0
	for _, idx := range segs {
		data, err := os.ReadFile(filepath.Join(path, segmentName(idx)))
		if err != nil {
			t.Fatal(err)
		}
		sc, _ := scanSegment(data, nil)
		total += int(sc.records)
	}
	// Simulate the crash: drop the segments after the first sealed one, so
	// the highest remaining segment is sealed.
	sealedData, err := os.ReadFile(filepath.Join(path, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	sc1, _ := scanSegment(sealedData, nil)
	if !sc1.sealed {
		t.Fatal("segment 1 should be sealed")
	}
	for _, idx := range segs[1:] {
		if err := os.Remove(filepath.Join(path, segmentName(idx))); err != nil {
			t.Fatal(err)
		}
	}
	l2, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(got)) != sc1.records {
		t.Fatalf("replayed %d, want %d", len(got), sc1.records)
	}
	if l2.segIndex != 2 {
		t.Fatalf("active segment = %d, want fresh 2 after the sealed one", l2.segIndex)
	}
	if err := l2.Append(rec("b", true, 999)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}
