// Package store provides the concurrent feedback store shared by the
// reputation server (the paper's central-collector deployment) and the
// gossip layer (the P2P deployment): per-server transaction histories with
// duplicate suppression and deterministic time ordering.
//
// The store is sharded by server ID, so writes against different servers
// proceed without contention, and every server carries a monotonic version
// counter bumped on each accepted write. The version lets read paths — the
// assessment cache above all — detect "history unchanged since I last
// looked" in O(1) and reuse prior work instead of recomputing over the full
// record list.
package store

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"honestplayer/internal/feedback"
)

// DefaultShards is the shard count used by New. Shards only bound write
// contention (each shard has its own lock); the value does not affect any
// observable ordering or content.
const DefaultShards = 16

// Hash is the content hash of a feedback record, used for duplicate
// suppression and gossip set reconciliation.
type Hash uint64

// HashOf returns the content hash of a feedback record.
func HashOf(f feedback.Feedback) Hash {
	h := fnv.New64a()
	var buf [8]byte
	n := f.Time.UnixNano()
	for i := 0; i < 8; i++ {
		buf[i] = byte(n >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte{byte(f.Rating)})
	_, _ = h.Write([]byte(f.Server))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(f.Client))
	return Hash(h.Sum64())
}

// Accumulator consumes a server's accepted writes in history (time) order.
// The store feeds it under the shard write lock, so implementations need no
// internal synchronisation against writers; read access goes through
// ViewAccumulator, which holds the shard read lock. The incremental
// assessment engine (core.ServerAccumulator) is the intended implementation.
//
// SizeBytes self-reports the accumulator's approximate resident heap
// footprint; the memory-budget governor charges it against the node-wide
// budget alongside the server's history bytes. It is called under the shard
// lock after each accepted write, so it must be cheap — O(window size), not
// O(history length).
type Accumulator interface {
	Append(feedback.Feedback)
	SizeBytes() int
}

// AccumulatorFactory mints the per-server accumulator the store maintains
// once a factory is installed via SetAccumulatorFactory.
type AccumulatorFactory func(server feedback.EntityID) Accumulator

// entry is one server's state within a shard: the working history, a
// memoized read snapshot, the version, a running content checksum, and the
// optional incremental accumulator. An entry is either resident (hist set)
// or an evicted stub (hist nil, count/stubSnapSeq valid) — see lifecycle.go.
type entry struct {
	// hist is the store-owned working history, mutated only under the
	// shard's write lock: appended in place on the fast path, rebuilt on
	// the rare out-of-order insert (never shifted in place, so handed-out
	// snapshots stay intact). nil marks an evicted stub.
	hist *feedback.History
	// snap memoizes the immutable view handed to readers; writes clear it,
	// the next read rebuilds it in O(1) via SnapshotView. Atomic because
	// readers memoize under the shard's read lock.
	snap atomic.Pointer[feedback.History]
	// version counts accepted writes for this server; it starts at 1 for
	// the first record so that 0 can mean "never seen".
	version uint64
	// xor is the XOR of all content hashes, maintained incrementally so
	// gossip checksums cost O(servers) instead of O(records).
	xor uint64
	// acc is the incremental assessment accumulator, nil until a factory is
	// installed. Mutated only under the shard write lock; rebuilt from the
	// history on the rare out-of-order insert.
	acc Accumulator
	// sizeBytes is the accounted resident footprint (entryOverhead + history
	// + accumulator), maintained by resizeLocked; 0 for stubs.
	sizeBytes int
	// count is the record count frozen at eviction time; meaningful only
	// while hist is nil (resident entries read hist.Len()).
	count int
	// stubSnapSeq is the newest durable snapshot sequence at eviction time;
	// meaningful only while hist is nil.
	stubSnapSeq uint64
	// touched is the clock (second-chance) bit: reads and writes set it, the
	// eviction sweep clears it and only evicts entries found clear. Atomic
	// because read paths hold only the shard read lock.
	touched atomic.Bool
}

// snapshot returns the entry's memoized immutable view, building it if a
// write invalidated it. Callers must hold the shard lock (read suffices).
func (e *entry) snapshot() *feedback.History {
	if s := e.snap.Load(); s != nil {
		return s
	}
	s := e.hist.SnapshotView()
	e.snap.Store(s)
	return s
}

// shard is one lock domain of the store, padded to a cache line so that
// neighbouring shards' locks do not false-share.
type shard struct {
	mu     sync.RWMutex
	byServ map[feedback.EntityID]*entry
	seen   map[Hash]struct{}
	_      [24]byte
}

// Store is a concurrent, deduplicating feedback store. Records are kept
// per server, sorted by transaction time (ties broken by content hash for
// determinism across nodes), which is the order behaviour tests require.
//
// The zero value is not usable; construct with New or NewSharded.
type Store struct {
	shards []shard
	// total counts stored (non-duplicate) records across all shards.
	total atomic.Int64
	// global counts accepted writes store-wide; read via GlobalVersion.
	global atomic.Uint64
	// accFactory mints per-server incremental accumulators; nil pointer
	// means the engine is off. Atomic so Add can read it under only its own
	// shard lock while SetAccumulatorFactory installs it store-wide.
	accFactory atomic.Pointer[AccumulatorFactory]
	// accTracked counts servers currently carrying a live accumulator.
	accTracked atomic.Int64

	// Lifecycle governor state (see lifecycle.go): the accounted resident
	// footprint and its budget, resident/evicted populations, cumulative
	// counters, the pin/preference hooks, and the sweep's clock hand.
	residentBytes atomic.Int64
	budget        atomic.Int64
	residentCount atomic.Int64
	evictedCount  atomic.Int64
	evictions     atomic.Uint64
	reinstates    atomic.Uint64
	snapSeq       atomic.Uint64
	evictGuard    atomic.Pointer[EvictGuard]
	evictPref     atomic.Pointer[EvictPreference]
	evictMu       sync.Mutex
	clock         int // next shard the sweep starts from; under evictMu
}

// New returns an empty store with DefaultShards shards.
func New() *Store { return NewSharded(DefaultShards) }

// NewSharded returns an empty store with n shards; n < 1 is treated as 1.
func NewSharded(n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{shards: make([]shard, n)}
	for i := range s.shards {
		s.shards[i].byServ = make(map[feedback.EntityID]*entry)
		s.shards[i].seen = make(map[Hash]struct{})
	}
	return s
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// shardOf maps a server ID to its shard.
func (s *Store) shardOf(server feedback.EntityID) *shard {
	return &s.shards[s.ShardIndex(server)]
}

// ShardIndex returns the index (< NumShards) of the shard holding server's
// records. Batch readers group servers by shard index so all items of one
// shard can be served under a single lock acquisition (see ViewShard).
func (s *Store) ShardIndex(server feedback.EntityID) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(server))
	return int(h.Sum64() % uint64(len(s.shards)))
}

// Add inserts a feedback record. It returns false when an identical record
// (same content hash) was already present, and an error when the record is
// invalid or the server's state is evicted (ErrEvicted — fault the server
// back in via the persistence layer and retry).
func (s *Store) Add(f feedback.Feedback) (bool, error) {
	ok, err := s.add(f)
	if ok {
		s.maybeEvict()
	}
	return ok, err
}

func (s *Store) add(f feedback.Feedback) (bool, error) {
	if err := f.Validate(); err != nil {
		return false, err
	}
	h := HashOf(f)
	sh := s.shardOf(f.Server)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.addLocked(sh, f, h)
}

// addLocked is the insert body shared by add and AddBatch. The caller holds
// sh's write lock and has already validated f and computed its hash.
func (s *Store) addLocked(sh *shard, f feedback.Feedback, h Hash) (bool, error) {
	if _, dup := sh.seen[h]; dup {
		return false, nil
	}
	e := sh.byServ[f.Server]
	if e == nil {
		e = &entry{hist: feedback.NewHistory(f.Server)}
		sh.byServ[f.Server] = e
		s.residentCount.Add(1)
	} else if e.hist == nil {
		// A stub cannot accept writes: its dedup hashes are gone and its
		// accumulator would silently miss the record. The serving layer
		// rebuilds the server and retries.
		return false, fmt.Errorf("%w: %q", ErrEvicted, f.Server)
	}
	n := e.hist.Len()
	inOrder := n == 0 || lessRecord(e.hist.At(n-1), f)
	if inOrder {
		// Append fast path: in-place, amortised O(1). Outstanding snapshots
		// are unaffected — the append writes past their length.
		if err := e.hist.Append(f); err != nil {
			return false, err
		}
	} else {
		e.hist = insertSorted(e.hist, f)
	}
	fp := s.accFactory.Load()
	switch {
	case e.acc == nil:
		// Factory installed after this server gained records (or the
		// server is new): mint and catch up on the whole history. The
		// factory may decline (nil) — e.g. a cluster node refusing to
		// materialize accumulators for servers it does not own.
		if fp != nil {
			if acc := (*fp)(f.Server); acc != nil {
				e.acc = acc
				s.accTracked.Add(1)
				replayAccumulator(e.acc, e.hist)
			}
		}
	case inOrder:
		e.acc.Append(f)
	default:
		// Out-of-order insert: accumulators are strictly append-only, so
		// rebuild by replaying the re-ordered history — the insert above
		// already paid O(n) on this path. Without a factory (a snapshot-
		// seeded accumulator whose factory was since removed) the
		// accumulator cannot be rebuilt and is dropped.
		if fp != nil {
			if acc := (*fp)(f.Server); acc != nil {
				e.acc = acc
				replayAccumulator(e.acc, e.hist)
			} else {
				e.acc = nil
				s.accTracked.Add(-1)
			}
		} else {
			e.acc = nil
			s.accTracked.Add(-1)
		}
	}
	e.snap.Store(nil)
	sh.seen[h] = struct{}{}
	e.version++
	e.xor ^= uint64(h)
	e.touched.Store(true)
	s.resizeLocked(e)
	s.total.Add(1)
	s.global.Add(1)
	return true, nil
}

// insertSorted rebuilds a history with f inserted at its (time, hash)
// position. Out-of-order arrivals are the rare path (gossip deltas, ledger
// replays of interleaved servers), so the O(n) rebuild is acceptable; a
// fresh backing array (rather than an in-place shift) keeps old snapshots
// untouched.
func insertSorted(h *feedback.History, f feedback.Feedback) *feedback.History {
	n := h.Len()
	idx := sort.Search(n, func(i int) bool { return lessRecord(f, h.At(i)) })
	out := feedback.NewHistory(h.Server())
	for i := 0; i < idx; i++ {
		// Records re-appended from a valid history cannot fail.
		_ = out.Append(h.At(i))
	}
	_ = out.Append(f)
	for i := idx; i < n; i++ {
		_ = out.Append(h.At(i))
	}
	return out
}

// lessRecord orders records by time, then content hash.
func lessRecord(a, b feedback.Feedback) bool {
	if !a.Time.Equal(b.Time) {
		return a.Time.Before(b.Time)
	}
	return HashOf(a) < HashOf(b)
}

// AddAll inserts records, returning how many were new.
func (s *Store) AddAll(recs []feedback.Feedback) (int, error) {
	added := 0
	for i, f := range recs {
		ok, err := s.Add(f)
		if err != nil {
			return added, fmt.Errorf("record %d: %w", i, err)
		}
		if ok {
			added++
		}
	}
	return added, nil
}

// AddResult is one record's outcome within an AddBatch: exactly the (bool,
// error) an equivalent Add call would have returned.
type AddResult struct {
	// Stored is true for a newly inserted record, false for a duplicate.
	Stored bool
	// Err is the record's failure (validation error, or ErrEvicted for a
	// write to an evicted server). A failed record never affects its batch
	// siblings.
	Err error
}

// addGroup is the unit of batch-insert fan-out: the batch positions of all
// records living on one shard, in batch order. Grouping is what lets the
// batch feed a whole shard's records — dedup, history, accumulator, version
// — under a single write-lock acquisition.
type addGroup struct {
	sh     *shard
	pos    []int
	hashes []Hash
}

// AddBatch inserts records grouped by shard: records of the same shard are
// applied in batch order under one shard-lock acquisition, and the shard
// groups are fanned out across at most workers goroutines (workers <= 0
// means GOMAXPROCS). Results[i] always reports Records[i]'s outcome, with
// the same semantics as len(recs) sequential Add calls: the insert order
// within a shard is the batch order, so dedup and accumulator state end up
// identical. Eviction pressure is resolved once at the end, like Add does
// after its insert.
func (s *Store) AddBatch(recs []feedback.Feedback, workers int) []AddResult {
	results := make([]AddResult, len(recs))
	byShard := make(map[*shard]*addGroup)
	groups := make([]*addGroup, 0, len(s.shards))
	for i, f := range recs {
		if err := f.Validate(); err != nil {
			results[i].Err = err
			continue
		}
		sh := s.shardOf(f.Server)
		g := byShard[sh]
		if g == nil {
			g = &addGroup{sh: sh}
			byShard[sh] = g
			groups = append(groups, g)
		}
		g.pos = append(g.pos, i)
		g.hashes = append(g.hashes, HashOf(f))
	}

	apply := func(g *addGroup) {
		g.sh.mu.Lock()
		defer g.sh.mu.Unlock()
		for j, i := range g.pos {
			results[i].Stored, results[i].Err = s.addLocked(g.sh, recs[i], g.hashes[j])
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		for _, g := range groups {
			apply(g)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(groups) {
						return
					}
					apply(groups[i])
				}
			}()
		}
		wg.Wait()
	}

	for i := range results {
		if results[i].Stored {
			s.maybeEvict()
			break
		}
	}
	return results
}

// History returns the server's transaction history in time order. It is
// empty (not nil) for unknown servers and ErrEvicted for servers whose
// state was evicted (fault in via the persistence layer and retry).
//
// The returned History is a shared immutable snapshot: it costs O(1), is
// never modified by later writes, and MUST be treated read-only by the
// caller (clone before mutating).
func (s *Store) History(server feedback.EntityID) (*feedback.History, error) {
	h, v := s.Snapshot(server)
	if h == nil {
		return nil, fmt.Errorf("%w: %q (version %d)", ErrEvicted, server, v)
	}
	return h, nil
}

// Snapshot returns the server's history snapshot together with its version,
// read atomically. The version is 0 for unknown servers and increases by
// one with every accepted write, so equal versions imply identical
// histories. A nil history with a non-zero version marks an evicted server:
// the records exist durably but are not resident. The same read-only
// contract as History applies.
func (s *Store) Snapshot(server feedback.EntityID) (*feedback.History, uint64) {
	sh := s.shardOf(server)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.byServ[server]
	if e == nil {
		return feedback.NewHistory(server), 0
	}
	if e.hist == nil {
		return nil, e.version
	}
	e.touched.Store(true)
	return e.snapshot(), e.version
}

// SetAccumulatorFactory installs (or, with nil, removes) the per-server
// incremental accumulator factory. Servers that already hold records get an
// accumulator immediately, replayed over their existing history, so the
// factory may be installed before or after seeding. Concurrent writes are
// safe: a write that races ahead of the installation sweep mints its own
// accumulator and the sweep skips it.
func (s *Store) SetAccumulatorFactory(f AccumulatorFactory) {
	if f == nil {
		s.accFactory.Store(nil)
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			for _, e := range sh.byServ {
				if e.acc != nil {
					e.acc = nil
					s.accTracked.Add(-1)
					s.resizeLocked(e)
				}
			}
			sh.mu.Unlock()
		}
		return
	}
	s.accFactory.Store(&f)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for srv, e := range sh.byServ {
			if e.acc == nil && e.hist != nil {
				if acc := f(srv); acc != nil {
					e.acc = acc
					s.accTracked.Add(1)
					replayAccumulator(e.acc, e.hist)
					s.resizeLocked(e)
				}
			}
		}
		sh.mu.Unlock()
	}
}

// RetainAccumulators drops the accumulators of every server for which keep
// returns false. A cluster node calls it when its ownership view attaches
// (or changes) so accumulator memory is only spent on servers the node
// owns or replicates; dropped servers keep their records and fall back to
// the batch assessment path, re-minting an accumulator on their next write
// only if the installed factory then accepts them.
func (s *Store) RetainAccumulators(keep func(feedback.EntityID) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for srv, e := range sh.byServ {
			if e.acc != nil && !keep(srv) {
				e.acc = nil
				s.accTracked.Add(-1)
				s.resizeLocked(e)
			}
		}
		sh.mu.Unlock()
	}
}

// replayAccumulator feeds an entire history to a fresh accumulator.
func replayAccumulator(acc Accumulator, h *feedback.History) {
	for i := 0; i < h.Len(); i++ {
		acc.Append(h.At(i))
	}
}

// ViewAccumulator runs view with the server's accumulator and current
// version under the shard's read lock, returning false (without calling
// view) when the server is unknown or carries no accumulator. The callback
// must treat the accumulator read-only and must not call back into the
// store: it runs under the shard lock, so writes to this server's shard
// wait for it.
func (s *Store) ViewAccumulator(server feedback.EntityID, view func(acc Accumulator, version uint64)) bool {
	sh := s.shardOf(server)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.byServ[server]
	if e == nil || e.acc == nil {
		return false
	}
	e.touched.Store(true)
	view(e.acc, e.version)
	return true
}

// ViewShard serves a group of servers that all live on shard idx under a
// single read-lock acquisition: view is invoked once per server, in order,
// with the position i into servers, the server's accumulator (nil when none
// is installed), its memoized history snapshot, and its version. Unknown
// servers get (nil, nil, 0); evicted servers get (nil, nil, version) with a
// non-zero version. It panics if any server maps to a different
// shard — silent misrouting would report known servers as unknown.
//
// The same contracts as ViewAccumulator and Snapshot apply: accumulators
// are read-only inside view, snapshots are shared immutable views, and view
// must not call back into the store. Because the whole group holds the
// shard read lock, writes to this shard wait for the slowest item; callers
// should keep per-item work O(windows) (accumulator reads) and defer
// anything heavier until after ViewShard returns, using the captured
// snapshot + version instead.
func (s *Store) ViewShard(idx int, servers []feedback.EntityID, view func(i int, acc Accumulator, snap *feedback.History, version uint64)) {
	sh := &s.shards[idx]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for i, srv := range servers {
		if s.ShardIndex(srv) != idx {
			panic(fmt.Sprintf("store: ViewShard(%d) got server %q of shard %d", idx, srv, s.ShardIndex(srv)))
		}
		e := sh.byServ[srv]
		if e == nil {
			view(i, nil, nil, 0)
			continue
		}
		if e.hist == nil {
			// Evicted stub: a nil snapshot with a non-zero version tells the
			// batch path to fault the server in rather than report unknown.
			view(i, nil, nil, e.version)
			continue
		}
		e.touched.Store(true)
		view(i, e.acc, e.snapshot(), e.version)
	}
}

// AccumulatorsTracked returns the number of servers carrying a live
// incremental accumulator.
func (s *Store) AccumulatorsTracked() int { return int(s.accTracked.Load()) }

// Version returns the server's current version counter: 0 when the server
// is unknown, otherwise the number of accepted writes to it.
func (s *Store) Version(server feedback.EntityID) uint64 {
	_, v := s.Snapshot(server)
	return v
}

// GlobalVersion counts accepted writes store-wide. Readers that derive
// whole-store summaries (gossip checksums) use it to skip recomputation
// when nothing changed.
func (s *Store) GlobalVersion() uint64 { return s.global.Load() }

// Records returns a copy of the server's records in time order; nil when
// the server's state is evicted.
func (s *Store) Records(server feedback.EntityID) []feedback.Feedback {
	h, _ := s.Snapshot(server)
	if h == nil {
		return nil
	}
	return h.Records()
}

// Servers returns the known server IDs, sorted.
func (s *Store) Servers() []feedback.EntityID {
	var out []feedback.EntityID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.byServ {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the total number of stored records.
func (s *Store) Len() int { return int(s.total.Load()) }

// ServerLen returns the number of records for one server, resident or not
// (a stub remembers its count).
func (s *Store) ServerLen(server feedback.EntityID) int {
	return s.ServerChecksum(server).Count
}

// Hashes returns the content hashes of all stored records, sorted. It is
// the digest the gossip layer exchanges.
func (s *Store) Hashes() []Hash {
	var out []Hash
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for h := range sh.seen {
			out = append(out, h)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Checksum summarises one server's records: the count and the XOR of all
// content hashes. Equal checksums mean (up to hash collisions) equal record
// sets, letting gossip peers skip servers that are already in sync.
type Checksum struct {
	Count int    `json:"count"`
	XOR   uint64 `json:"xor"`
}

// Checksums returns the per-server summary of the whole store. Checksums
// are maintained incrementally on write, so this costs O(servers), not
// O(records).
func (s *Store) Checksums() map[feedback.EntityID]Checksum {
	out := make(map[feedback.EntityID]Checksum)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for srv, e := range sh.byServ {
			out[srv] = Checksum{Count: e.countLocked(), XOR: e.xor}
		}
		sh.mu.RUnlock()
	}
	return out
}

// countLocked returns the entry's record count, resident or stub. Callers
// hold the shard lock (read suffices).
func (e *entry) countLocked() int {
	if e.hist == nil {
		return e.count
	}
	return e.hist.Len()
}

// ServerChecksum returns one server's checksum in O(1): the record count
// and XOR of all content hashes, maintained incrementally on write. The
// zero Checksum means the server is unknown. Cluster nodes exchange it as a
// replica-agreement digest: equal checksums mean (up to hash collisions)
// equal record sets.
func (s *Store) ServerChecksum(server feedback.EntityID) Checksum {
	sh := s.shardOf(server)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.byServ[server]
	if e == nil {
		return Checksum{}
	}
	return Checksum{Count: e.countLocked(), XOR: e.xor}
}

// ServerHashes returns the content hashes of one server's records, sorted;
// nil when the server's state is evicted (the per-record hashes follow the
// history out of memory).
func (s *Store) ServerHashes(server feedback.EntityID) []Hash {
	h, _ := s.Snapshot(server)
	if h == nil {
		return nil
	}
	out := make([]Hash, 0, h.Len())
	for i := 0; i < h.Len(); i++ {
		out = append(out, HashOf(h.At(i)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ServerMissingFrom returns one server's records whose hashes are absent
// from the digest.
func (s *Store) ServerMissingFrom(server feedback.EntityID, digest []Hash) []feedback.Feedback {
	have := make(map[Hash]struct{}, len(digest))
	for _, h := range digest {
		have[h] = struct{}{}
	}
	hist, _ := s.Snapshot(server)
	if hist == nil {
		return nil
	}
	var out []feedback.Feedback
	for i := 0; i < hist.Len(); i++ {
		if f := hist.At(i); !inDigest(have, f) {
			out = append(out, f)
		}
	}
	return out
}

// MissingFrom returns the stored records whose hashes are absent from the
// given digest — the records a gossip peer with that digest still needs.
func (s *Store) MissingFrom(digest []Hash) []feedback.Feedback {
	have := make(map[Hash]struct{}, len(digest))
	for _, h := range digest {
		have[h] = struct{}{}
	}
	var out []feedback.Feedback
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.byServ {
			hist := e.hist
			if hist == nil {
				continue // evicted: records are durable, not servable from RAM
			}
			for j := 0; j < hist.Len(); j++ {
				if f := hist.At(j); !inDigest(have, f) {
					out = append(out, f)
				}
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return lessRecord(out[i], out[j]) })
	return out
}

func inDigest(have map[Hash]struct{}, f feedback.Feedback) bool {
	_, ok := have[HashOf(f)]
	return ok
}
