package repserver

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/wire"
)

// startIncrementalPair starts two servers over the same assessor geometry:
// one with the incremental engine, one without. Differential assertions
// compare their answers request for request.
func startIncrementalPair(t *testing.T) (incr, batch *Server) {
	t.Helper()
	mk := func(incremental bool) *Server {
		srv, err := New("127.0.0.1:0", Config{Assessor: testAssessor(t), Incremental: incremental})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		t.Cleanup(func() {
			if err := srv.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		})
		return srv
	}
	return mk(true), mk(false)
}

// TestAssessIncrementalMatchesBatch drives a write-then-assess workload —
// the pattern that defeats the assessment cache — and checks the
// incremental server answers every request identically to the batch server,
// with the Incremental flag set and the counters moving.
func TestAssessIncrementalMatchesBatch(t *testing.T) {
	incrSrv, batchSrv := startIncrementalPair(t)
	ctx := context.Background()
	const server = "srv"
	for i := 0; i < 90; i++ {
		f := rec(server, feedback.EntityID(rune('a'+i%5)), i%10 != 9, int64(i)+1)
		for _, srv := range []*Server{incrSrv, batchSrv} {
			if _, err := srv.cfg.Recorder.Add(f); err != nil {
				t.Fatalf("add: %v", err)
			}
		}
		if i < 45 || i%3 != 0 {
			continue
		}
		req := wire.AssessRequest{Server: server, Threshold: 0.7}
		got, gotErr := incrSrv.assess(ctx, req)
		want, wantErr := batchSrv.assess(ctx, req)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("n=%d: error mismatch: incremental=%v batch=%v", i+1, gotErr, wantErr)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("n=%d: error text mismatch: %v vs %v", i+1, gotErr, wantErr)
			}
			continue
		}
		if !got.Incremental {
			t.Fatalf("n=%d: response not served incrementally", i+1)
		}
		got.Incremental = false
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: response mismatch:\nincremental: %+v\nbatch:       %+v", i+1, got, want)
		}
	}
	st := incrSrv.Stats().Incremental
	if !st.Enabled || st.ServersTracked != 1 || st.Served == 0 {
		t.Fatalf("incremental stats = %+v, want enabled with served requests and one tracked server", st)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("unexpected fallbacks: %+v", st)
	}
	if bst := batchSrv.Stats().Incremental; bst.Enabled || bst.Served != 0 || bst.ServersTracked != 0 {
		t.Fatalf("batch server incremental stats = %+v, want all-off", bst)
	}
}

// TestAssessIncrementalOverWire checks the Incremental flag survives the
// wire round-trip and the engine feeds from client submissions.
func TestAssessIncrementalOverWire(t *testing.T) {
	srv, err := New("127.0.0.1:0", Config{Assessor: testAssessor(t), Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() { _ = srv.Close() })
	c := dial(t, srv)
	for i := 0; i < 60; i++ {
		if _, err := c.Submit(rec("srv", feedback.EntityID(rune('a'+i%4)), true, int64(i)+1)); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	resp, err := c.Assess("srv", 0.5)
	if err != nil {
		t.Fatalf("assess: %v", err)
	}
	if !resp.Incremental {
		t.Fatal("response should be marked incremental")
	}
	if resp.Assessment.Suspicious || !resp.Accept {
		t.Fatalf("all-good history rejected: %+v", resp.Assessment)
	}
}

// TestAssessIncrementalUnknownServer keeps the unknown-server error intact
// when the engine is on.
func TestAssessIncrementalUnknownServer(t *testing.T) {
	srv, err := New("127.0.0.1:0", Config{Assessor: testAssessor(t), Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	_, aerr := srv.assess(context.Background(), wire.AssessRequest{Server: "ghost"})
	if aerr == nil || !strings.Contains(aerr.Error(), "no records") {
		t.Fatalf("unknown server error = %v", aerr)
	}
	if st := srv.Stats().Incremental; st.Fallbacks != 0 {
		t.Fatalf("unknown server must not count as fallback: %+v", st)
	}
}

// nonTrackerTrust is a trust function without an incremental tracker.
type nonTrackerTrust struct{}

func (nonTrackerTrust) Name() string                                  { return "non-tracker" }
func (nonTrackerTrust) Evaluate(h *feedback.History) (float64, error) { return 0.5, nil }

// TestNewIncrementalRequiresSupport rejects Incremental with an assessor
// whose components have no incremental form.
func TestNewIncrementalRequiresSupport(t *testing.T) {
	tp, err := core.NewTwoPhase(nil, nonTrackerTrust{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New("127.0.0.1:0", Config{Assessor: tp, Incremental: true}); err == nil {
		t.Fatal("New must reject Incremental for a non-incremental assessor")
	}
	// The same assessor without the flag still works.
	srv, err := New("127.0.0.1:0", Config{Assessor: tp})
	if err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()
}
