// Collusionring: a ring of five colluders props up an attacker's
// reputation with fake positive feedback. The plain behaviour test cannot
// see it — the time-ordered outcome pattern looks binomial — but the
// collusion-resilient test re-orders the history by feedback issuer and the
// fake-feedback structure jumps out. The example then runs the strategic
// colluding attacker against both defences and compares its real cost.
package main

import (
	"fmt"
	"log"

	"honestplayer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := honestplayer.NewRNG(11)
	colluders := []honestplayer.EntityID{"ring-0", "ring-1", "ring-2", "ring-3", "ring-4"}

	// Preparation: reputation 0.95 built entirely from colluder feedback.
	h, err := honestplayer.PrepareByColluders("shady", 400, 0.95, colluders, rng)
	if err != nil {
		return err
	}
	fmt.Printf("attacker %q: %d transactions, good ratio %.3f, %d distinct feedback issuers\n",
		h.Server(), h.Len(), h.GoodRatio(), h.DistinctClients())

	cfg := honestplayer.TesterConfig{}
	plain, err := honestplayer.NewMultiTester(cfg)
	if err != nil {
		return err
	}
	resilient, err := honestplayer.NewCollusionMultiTester(cfg)
	if err != nil {
		return err
	}

	// The attacker now cheats 20 times while maintaining its reputation.
	for name, tester := range map[string]honestplayer.Tester{
		"multi-testing (time order)":  plain,
		"collusion-resilient testing": resilient,
	} {
		assessor, err := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
		if err != nil {
			return err
		}
		pop, err := honestplayer.NewPopulation("client", 95, 0, 0, 0, honestplayer.NewRNG(5))
		if err != nil {
			return err
		}
		attacker := &honestplayer.ColludingAttacker{
			Assessor:  assessor,
			Threshold: 0.9,
			GoalBad:   20,
			Colluders: colluders,
			MaxSteps:  20000,
		}
		cost, err := attacker.Run(h.Clone(), pop, honestplayer.NewRNG(6))
		if err != nil {
			fmt.Printf("%-30s attack aborted: %v (after %d genuine services, %d fakes)\n",
				name+":", err, cost.Good, cost.Colluded)
			continue
		}
		fmt.Printf("%-30s 20 attacks cost %d genuine good services + %d colluder fakes\n",
			name+":", cost.Good, cost.Colluded)
	}
	fmt.Println()
	fmt.Println("Against plain testing the ring makes the attack nearly free; the")
	fmt.Println("issuer-reordered test forces the attacker to actually serve real clients.")
	return nil
}
