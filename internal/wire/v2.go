// Protocol v2: length-prefixed binary framing, negotiated per connection
// alongside the JSON protocol.
//
// A v2 connection opens with a 5-byte client hello whose first byte (0xB2)
// can never begin a JSON frame ('{'), so the server distinguishes the two
// protocols by peeking one byte. A pre-v2 server treats the hello as a
// malformed JSON line and answers with its usual id-0 error frame — which
// starts with '{' — so a negotiating client detects the fallback from the
// first response byte and redials speaking JSON. Old clients never send the
// magic and land on the JSON path untouched.
//
//	client hello:  0xB2 'W' '2' <maxver> '\n'     (newline keeps a pre-v2
//	                                               server's line reader from
//	                                               blocking on the hello)
//	server ack:    0xB2 'W' '2' <ver>
//
// After the ack both directions speak length-prefixed frames:
//
//	uint32  big-endian length of the body (type + flags + id + payload)
//	uint8   type code (see typeCode)
//	uint8   flags (bit 0: payload is JSON bytes, not the binary codec)
//	uint64  big-endian request id
//	bytes   payload
//
// Frames carry no per-frame version — the version is fixed at negotiation.
// The body length is bounded by MaxFrame, the same limit as the JSON
// protocol. Ids keep their v1 semantics (responses echo them, id 0 is
// unattributable and connection-fatal), but v2 drops the one-in-flight
// restriction: many requests may be outstanding per connection and a
// response is matched to its request by id, not by order.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// VersionV2 is the binary protocol version negotiated by the hello/ack
// handshake.
const VersionV2 = 2

// HelloMagic is the first byte of a v2 client hello. It is deliberately not
// a printable character and in particular not '{', so the first byte of a
// connection unambiguously selects the framing.
const HelloMagic byte = 0xB2

// helloPrefix is the shared prefix of the client hello and the server ack.
var helloPrefix = [3]byte{HelloMagic, 'W', '2'}

// ErrNotV2 reports that the peer did not speak the v2 handshake (the
// connection may still be usable as JSON after a redial).
var ErrNotV2 = errors.New("wire: peer does not speak protocol v2")

// v2 frame geometry.
const (
	v2HeaderLen = 4 + 1 + 1 + 8 // length + type code + flags + id
	v2BodyMin   = v2HeaderLen - 4
)

// flagJSONPayload marks a v2 frame whose payload is JSON bytes rather than
// the per-type binary codec — the escape hatch for message types without a
// binary codec (the gossip exchange above all).
const flagJSONPayload byte = 1 << 0

// Type codes for the v2 frame header. Codes are part of the wire contract:
// never renumber, only append.
var v2Codes = map[MsgType]byte{
	TypePing:     1,
	TypePong:     2,
	TypeSubmit:   3,
	TypeSubmitR:  4,
	TypeSubmitB:  5,
	TypeSubmitBR: 6,
	TypeHistory:  7,
	TypeHistoryR: 8,
	TypeAssess:   9,
	TypeAssessR:  10,
	TypeAssessB:  11,
	TypeAssessBR: 12,
	TypeDigest:   13,
	TypeDelta:    14,
	TypeSummary:  15,
	TypeSummaryR: 16,
	TypeError:    17,
	// Cluster forwarding. The fwd.* payloads have binary codecs (their
	// responses carry full verdict tables, far too hot for JSON); the
	// cluster.info pair is cold and rides as JSON via flagJSONPayload.
	TypeFwdAssess:    18,
	TypeFwdAssessR:   19,
	TypeFwdSubmit:    20,
	TypeFwdSubmitR:   21,
	TypeFwdBatch:     22,
	TypeFwdBatchR:    23,
	TypeFwdAssessB:   24,
	TypeFwdAssessBR:  25,
	TypeClusterInfo:  26,
	TypeClusterInfoR: 27,
}

var v2Types = func() map[byte]MsgType {
	m := make(map[byte]MsgType, len(v2Codes))
	for t, c := range v2Codes {
		m[c] = t
	}
	return m
}()

// WriteHello writes the 5-byte client hello offering VersionV2.
func WriteHello(w io.Writer) error {
	hello := [5]byte{helloPrefix[0], helloPrefix[1], helloPrefix[2], VersionV2, '\n'}
	if _, err := w.Write(hello[:]); err != nil {
		return fmt.Errorf("wire: write hello: %w", err)
	}
	return nil
}

// ReadHello consumes a client hello and returns the offered version. The
// caller has already peeked HelloMagic; anything else malformed fails with
// ErrBadMessage, an offered version below VersionV2 with ErrBadVersion.
func ReadHello(r io.Reader) (byte, error) {
	var hello [5]byte
	if _, err := io.ReadFull(r, hello[:]); err != nil {
		return 0, fmt.Errorf("%w: short hello: %v", ErrBadMessage, err)
	}
	if [3]byte(hello[:3]) != helloPrefix || hello[4] != '\n' {
		return 0, fmt.Errorf("%w: malformed v2 hello", ErrBadMessage)
	}
	// Future clients may offer a higher version; the server acks the highest
	// it speaks. Anything below VersionV2 cannot be served on this framing.
	if hello[3] < VersionV2 {
		return 0, fmt.Errorf("%w: hello offers %d", ErrBadVersion, hello[3])
	}
	return hello[3], nil
}

// WriteHelloAck writes the 4-byte server ack confirming VersionV2.
func WriteHelloAck(w io.Writer) error {
	ack := [4]byte{helloPrefix[0], helloPrefix[1], helloPrefix[2], VersionV2}
	if _, err := w.Write(ack[:]); err != nil {
		return fmt.Errorf("wire: write hello ack: %w", err)
	}
	return nil
}

// ReadHelloAck consumes and validates a server ack. A first byte of '{'
// means the peer answered with a JSON frame — a pre-v2 server rejecting the
// hello — and is reported as ErrNotV2 so the client can fall back.
func ReadHelloAck(r io.Reader) error {
	var ack [4]byte
	if _, err := io.ReadFull(r, ack[:1]); err != nil {
		return fmt.Errorf("wire: read hello ack: %w", err)
	}
	if ack[0] == '{' {
		return ErrNotV2
	}
	if _, err := io.ReadFull(r, ack[1:]); err != nil {
		return fmt.Errorf("wire: read hello ack: %w", err)
	}
	if [3]byte(ack[:3]) != helloPrefix {
		return fmt.Errorf("%w: malformed ack", ErrNotV2)
	}
	if ack[3] != VersionV2 {
		return fmt.Errorf("%w: ack version %d", ErrBadVersion, ack[3])
	}
	return nil
}

// maxPooledFrame bounds the frame buffers kept in the pool: occasional huge
// frames (chunked histories) should not pin megabytes per idle connection.
const maxPooledFrame = 1 << 20

var frameBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// WriteV2 frames and writes one envelope in v2 framing with a single Write
// call, assembling the frame in a pooled buffer. env.Binary selects the
// payload-encoding flag; the writer does not re-encode the payload.
func WriteV2(w io.Writer, env Envelope) error {
	code, ok := v2Codes[env.Type]
	if !ok {
		return fmt.Errorf("%w: type %q has no v2 code", ErrBadMessage, env.Type)
	}
	body := v2BodyMin + len(env.Payload)
	if body > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body)
	}
	var flags byte
	if !env.Binary && len(env.Payload) > 0 {
		flags |= flagJSONPayload
	}
	bp := frameBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = binary.BigEndian.AppendUint32(buf, uint32(body))
	buf = append(buf, code, flags)
	buf = binary.BigEndian.AppendUint64(buf, env.ID)
	buf = append(buf, env.Payload...)
	_, err := w.Write(buf)
	if cap(buf) <= maxPooledFrame {
		*bp = buf
		frameBufPool.Put(bp)
	}
	if err != nil {
		return fmt.Errorf("write frame: %w", err)
	}
	return nil
}

// ReadV2 reads one v2 frame into a freshly allocated envelope. The payload
// is owned by the caller; use ReadV2Into on hot loops that can recycle the
// buffer.
func ReadV2(r io.Reader) (Envelope, error) {
	env, _, err := ReadV2Into(r, nil)
	return env, err
}

// ReadV2Into reads one v2 frame, decoding its payload into buf (grown as
// needed) and returns the envelope together with the buffer for reuse.
//
// ALIASING: env.Payload aliases the returned buffer. The envelope is only
// valid until the buffer's next use — callers must fully decode (or copy)
// the payload before reading the next frame, and must not hand the envelope
// to anything that outlives the iteration (see the repserver conn loop for
// the abandoned-handler case).
func ReadV2Into(r io.Reader, buf []byte) (Envelope, []byte, error) {
	var hdr [v2HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		if errors.Is(err, io.EOF) {
			return Envelope{}, buf, io.EOF
		}
		return Envelope{}, buf, fmt.Errorf("read frame: %w", err)
	}
	body := int(binary.BigEndian.Uint32(hdr[:4]))
	if body > MaxFrame {
		return Envelope{}, buf, ErrFrameTooLarge
	}
	if body < v2BodyMin {
		return Envelope{}, buf, fmt.Errorf("%w: body %d below header", ErrBadMessage, body)
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return Envelope{}, buf, fmt.Errorf("read frame: %w", err)
	}
	typ, ok := v2Types[hdr[4]]
	if !ok {
		return Envelope{}, buf, fmt.Errorf("%w: unknown type code %d", ErrBadMessage, hdr[4])
	}
	flags := hdr[5]
	id := binary.BigEndian.Uint64(hdr[6:])
	n := body - v2BodyMin
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return Envelope{}, buf, fmt.Errorf("read frame payload: %w", err)
	}
	env := Envelope{V: VersionV2, Type: typ, ID: id}
	if n > 0 {
		env.Payload = buf
		env.Binary = flags&flagJSONPayload == 0
	}
	return env, buf, nil
}
