package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"time"

	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/ledger"
	"honestplayer/internal/store"
	"honestplayer/internal/trust"
)

// The boot benchmark compares the two recovery strategies for the same
// feedback history:
//
//   - replay: a legacy single-file JSON-lines ledger (the pre-segmentation
//     format) is opened cold, which migrates it in place and replays every
//     record through the store.
//   - snapshot: a segmented ledger whose history (minus a 1% tail) is
//     covered by a snapshot; boot decodes the snapshot, seeds the store
//     shard by shard, and replays only the tail segments.
//
// Both paths are run with and without the incremental assessment engine.
// With it, the snapshot carries serialized accumulator state, so a
// snapshot boot must restore running assessments without re-feeding the
// snapshotted history — the differential check below proves the resulting
// store (record counts, versions, checksums, incremental assessments) is
// bit-identical either way.

// bootBenchSize is one history size of the comparison.
type bootBenchSize struct {
	Records int // total records in the history
	Tail    int // records appended after the snapshot
}

// bootSizeResult is the per-(size, mode) outcome.
type bootSizeResult struct {
	Records          int     `json:"records"`
	TailRecords      int     `json:"tail_records"`
	Incremental      bool    `json:"incremental"`
	ReplayBootMs     float64 `json:"replay_boot_ms"`
	SnapshotBootMs   float64 `json:"snapshot_boot_ms"`
	Speedup          float64 `json:"speedup"`
	SnapshotBootMode string  `json:"snapshot_boot_mode"`
	StateMatch       bool    `json:"state_match"`
}

// bootBenchReport is the JSON document the -bootbench mode emits.
type bootBenchReport struct {
	Description string           `json:"description"`
	Command     string           `json:"command"`
	Environment map[string]any   `json:"environment"`
	Config      map[string]any   `json:"config"`
	Sizes       []bootSizeResult `json:"sizes"`
	Acceptance  string           `json:"acceptance"`
}

// bootRecord is the i-th record of the deterministic workload: 64 servers,
// 37 clients, one negative in twenty, strictly increasing timestamps so
// every record is content-unique.
func bootRecord(i int) feedback.Feedback {
	r := feedback.Positive
	if i%20 == 19 {
		r = feedback.Negative
	}
	return feedback.Feedback{
		Time:   time.Unix(int64(i), 0).UTC(),
		Server: feedback.EntityID(fmt.Sprintf("s%03d", i%64)),
		Client: feedback.EntityID(fmt.Sprintf("c%02d", i%37)),
		Rating: r,
	}
}

// bootOptions builds the PersistentStore options for one mode. With the
// incremental engine on, the options carry the same accumulator closures
// trustd wires: mint from the assessor, serialize into snapshots, restore
// on boot.
func bootOptions(incremental bool) (ledger.Options, *core.TwoPhase, error) {
	opts := ledger.Options{Shards: 4, SegmentBytes: 8 << 20}
	if !incremental {
		return opts, nil, nil
	}
	tp, err := core.NewTwoPhase(nil, trust.Average{})
	if err != nil {
		return opts, nil, err
	}
	opts.AccumulatorFactory = func(server feedback.EntityID) store.Accumulator {
		acc, err := tp.NewServerAccumulator(server)
		if err != nil {
			return nil
		}
		return acc
	}
	opts.EncodeAccumulator = func(acc store.Accumulator) ([]byte, bool) {
		sa, ok := acc.(*core.ServerAccumulator)
		if !ok {
			return nil, false
		}
		return sa.AppendState(nil)
	}
	opts.RestoreAccumulator = func(server feedback.EntityID, state []byte) (store.Accumulator, int, error) {
		sa, n, err := tp.RestoreServerAccumulator(server, state)
		if err != nil {
			return nil, 0, err
		}
		return sa, n, nil
	}
	return opts, tp, nil
}

// writeLegacyLedger writes the pre-segmentation format: one JSON object per
// line, no checksums, no segments.
func writeLegacyLedger(path string, n int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	for i := 0; i < n; i++ {
		line, err := json.Marshal(bootRecord(i))
		if err != nil {
			f.Close()
			return err
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// buildSnapshotLedger builds a segmented ledger with a snapshot covering
// all but the last size.Tail records.
func buildSnapshotLedger(path string, size bootBenchSize, incremental bool) error {
	opts, _, err := bootOptions(incremental)
	if err != nil {
		return err
	}
	ps, err := ledger.OpenStoreOptions(context.Background(), path, opts)
	if err != nil {
		return err
	}
	defer ps.Close()
	covered := size.Records - size.Tail
	for i := 0; i < covered; i++ {
		if _, err := ps.Add(bootRecord(i)); err != nil {
			return err
		}
	}
	if _, err := ps.Snapshot(); err != nil {
		return err
	}
	for i := covered; i < size.Records; i++ {
		if _, err := ps.Add(bootRecord(i)); err != nil {
			return err
		}
	}
	return ps.Close()
}

// bootFingerprint captures everything that defines the booted store's
// logical state without retaining the records themselves: per-server record
// count, version, content checksum, and (incremental mode) the restored
// accumulator's assessment.
func bootFingerprint(ps *ledger.PersistentStore, incremental bool) (map[string]any, error) {
	st := ps.Store()
	fp := map[string]any{"len": st.Len()}
	servers := st.Servers()
	sort.Slice(servers, func(i, j int) bool { return servers[i] < servers[j] })
	for _, srv := range servers {
		key := string(srv)
		fp[key+"/records"] = st.ServerLen(srv)
		fp[key+"/version"] = st.Version(srv)
		fp[key+"/checksum"] = st.ServerChecksum(srv)
		if incremental {
			var assessErr error
			ok := st.ViewAccumulator(srv, func(acc store.Accumulator, version uint64) {
				sa, isSA := acc.(*core.ServerAccumulator)
				if !isSA {
					assessErr = fmt.Errorf("server %q: unexpected accumulator type", srv)
					return
				}
				a, err := sa.Assess()
				if err != nil {
					assessErr = fmt.Errorf("assess %q: %w", srv, err)
					return
				}
				fp[key+"/assessment"] = a
				fp[key+"/accversion"] = version
			})
			if assessErr != nil {
				return nil, assessErr
			}
			if !ok {
				return nil, fmt.Errorf("server %q has no accumulator after boot", srv)
			}
		}
	}
	return fp, nil
}

// bootOnce opens the ledger at path once, returning the boot latency in
// milliseconds plus (when wantState is set) the fingerprint and boot mode.
func bootOnce(path string, incremental, wantState bool) (float64, map[string]any, string, error) {
	opts, _, err := bootOptions(incremental)
	if err != nil {
		return 0, nil, "", err
	}
	// Collect the previous boot's store before starting the clock, so each
	// timed open pays for its own allocations only — without this, a timed
	// boot absorbs the GC debt of whichever (much larger) boot ran before it.
	runtime.GC()
	start := time.Now()
	ps, err := ledger.OpenStoreOptions(context.Background(), path, opts)
	if err != nil {
		return 0, nil, "", err
	}
	ms := float64(time.Since(start).Nanoseconds()) / 1e6
	var fp map[string]any
	var mode string
	if wantState {
		if fp, err = bootFingerprint(ps, incremental); err != nil {
			ps.Close()
			return 0, nil, "", err
		}
		mode = ps.Stats().BootMode
	}
	if err := ps.Close(); err != nil {
		return 0, nil, "", err
	}
	return ms, fp, mode, nil
}

// timeBoots measures both boot paths with their cold opens interleaved —
// replay, snapshot, replay, snapshot, … — so slow drift on a shared
// machine (frequency scaling, noisy neighbours) hits both paths equally.
// Each path reports its best pass: scheduling noise only ever adds time.
func timeBoots(legacy, snapDir string, incremental bool) (replayMs, snapMs float64, replayFP, snapFP map[string]any, snapMode string, err error) {
	const passes = 3
	replayMs, snapMs = math.MaxFloat64, math.MaxFloat64
	for p := 0; p < passes; p++ {
		last := p == passes-1
		ms, fp, _, err := bootOnce(legacy, incremental, last)
		if err != nil {
			return 0, 0, nil, nil, "", fmt.Errorf("replay boot: %w", err)
		}
		replayMs = math.Min(replayMs, ms)
		if last {
			replayFP = fp
		}
		ms, fp, mode, err := bootOnce(snapDir, incremental, last)
		if err != nil {
			return 0, 0, nil, nil, "", fmt.Errorf("snapshot boot: %w", err)
		}
		snapMs = math.Min(snapMs, ms)
		if last {
			snapFP, snapMode = fp, mode
		}
	}
	return replayMs, snapMs, replayFP, snapFP, snapMode, nil
}

// runBootBench executes the replay-vs-snapshot boot comparison and writes
// the JSON report. A fingerprint mismatch between the two boot paths always
// fails; minSpeedup > 0 additionally gates every size on snapshot boots
// reaching that speedup from a real snapshot (not a replay fallback).
func runBootBench(out io.Writer, quick bool, minSpeedup float64) error {
	sizes := []bootBenchSize{
		{Records: 100000, Tail: 1000},
		{Records: 1000000, Tail: 10000},
	}
	if quick {
		sizes = []bootBenchSize{{Records: 20000, Tail: 200}}
	}
	report := bootBenchReport{
		Description: "Cold-boot latency of a snapshot+tail-replay open of the segmented ledger vs a full JSON replay of the same history from the legacy single-file format, with and without the incremental assessment engine. Each path reports the best of three interleaved cold opens; the differential check proves both boots yield an identical store (record counts, versions, content checksums, and restored incremental assessments).",
		Command:     "go run ./cmd/reprobench -bootbench",
		Environment: map[string]any{
			"go":   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"date": time.Now().UTC().Format("2006-01-02"),
		},
		Config: map[string]any{
			"servers":        64,
			"clients":        37,
			"good_ratio":     "19/20",
			"shards":         4,
			"segment_bytes":  8 << 20,
			"tail_fraction":  "1%",
			"passes_per_dir": 3,
			"trust":          "average",
		},
		Acceptance: "speedup at records=1000000 must be >= 10 with state_match true and snapshot_boot_mode \"snapshot\"",
	}
	work, err := os.MkdirTemp("", "bootbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	for _, size := range sizes {
		for _, incremental := range []bool{false, true} {
			tag := fmt.Sprintf("n%d-incr%v", size.Records, incremental)
			legacy := filepath.Join(work, tag+"-legacy")
			if err := writeLegacyLedger(legacy, size.Records); err != nil {
				return fmt.Errorf("%s: build legacy ledger: %w", tag, err)
			}
			snapDir := filepath.Join(work, tag+"-snap")
			if err := buildSnapshotLedger(snapDir, size, incremental); err != nil {
				return fmt.Errorf("%s: build snapshot ledger: %w", tag, err)
			}
			replayMs, snapMs, replayFP, snapFP, snapMode, err := timeBoots(legacy, snapDir, incremental)
			if err != nil {
				return fmt.Errorf("%s: %w", tag, err)
			}
			res := bootSizeResult{
				Records:          size.Records,
				TailRecords:      size.Tail,
				Incremental:      incremental,
				ReplayBootMs:     float64(int(replayMs*100)) / 100,
				SnapshotBootMs:   float64(int(snapMs*100)) / 100,
				Speedup:          float64(int(replayMs/snapMs*100)) / 100,
				SnapshotBootMode: snapMode,
				StateMatch:       reflect.DeepEqual(replayFP, snapFP),
			}
			report.Sizes = append(report.Sizes, res)
			if !res.StateMatch {
				return fmt.Errorf("%s: snapshot boot diverges from full replay", tag)
			}
			if minSpeedup > 0 {
				if res.SnapshotBootMode != "snapshot" {
					return fmt.Errorf("%s: boot fell back to %q instead of using the snapshot", tag, res.SnapshotBootMode)
				}
				if res.Speedup < minSpeedup {
					return fmt.Errorf("%s: speedup %.2f below gate %.2f", tag, res.Speedup, minSpeedup)
				}
			}
			os.RemoveAll(legacy)
			os.RemoveAll(snapDir)
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
