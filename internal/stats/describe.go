package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a float sample.
type Summary struct {
	N        int     `json:"n"`
	Mean     float64 `json:"mean"`
	Variance float64 `json:"variance"`
	StdDev   float64 `json:"stdDev"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	Median   float64 `json:"median"`
	P05      float64 `json:"p05"`
	P95      float64 `json:"p95"`
}

// Describe computes a Summary of xs. It returns an error for an empty
// sample.
func Describe(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("%w: empty sample", ErrInvalidDistribution)
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Variance = ss / float64(len(xs)-1)
	}
	s.StdDev = math.Sqrt(s.Variance)
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P05 = Quantile(sorted, 0.05)
	s.P95 = Quantile(sorted, 0.95)
	return s, nil
}

// Quantile returns the q-quantile (q in [0, 1]) of an ascending-sorted
// sample using linear interpolation between order statistics. It returns NaN
// for an empty sample and clamps q into [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanInt returns the arithmetic mean of integer samples, or 0 when empty.
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// WilsonInterval returns the Wilson score interval for a Bernoulli success
// probability given good successes out of n trials at normal quantile z
// (1.96 for 95%). Unlike the naive ±z·√(p̂(1−p̂)/n) interval it behaves at
// the extremes p̂ ≈ 0, 1 that reputation data lives at. It returns an error
// for invalid inputs.
func WilsonInterval(good, n int, z float64) (lo, hi float64, err error) {
	if n <= 0 || good < 0 || good > n || math.IsNaN(z) || z <= 0 {
		return 0, 0, fmt.Errorf("%w: good=%d n=%d z=%v", ErrInvalidDistribution, good, n, z)
	}
	p := float64(good) / float64(n)
	nn := float64(n)
	z2 := z * z
	denom := 1 + z2/nn
	center := (p + z2/(2*nn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}
