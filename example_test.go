package honestplayer_test

import (
	"fmt"
	"time"

	"honestplayer"
)

// The canonical flow: build a history, combine a behaviour tester with a
// trust function, and assess.
func Example() {
	rng := honestplayer.NewRNG(7)
	h := honestplayer.NewHistory("seller-42")
	for i := 0; i < 400; i++ {
		_ = h.AppendOutcome("buyer", rng.Bernoulli(0.95), time.Unix(int64(i), 0))
	}
	tester, _ := honestplayer.NewMultiTester(honestplayer.TesterConfig{
		Calibrator: honestplayer.NewCalibrator(honestplayer.CalibrationConfig{Seed: 1, Replicates: 300}, 0),
	})
	assessor, _ := honestplayer.NewTwoPhase(tester, honestplayer.Average{})
	ok, a, _ := assessor.Accept(h, 0.9)
	fmt.Printf("accepted=%v suspicious=%v\n", ok, a.Suspicious)
	// Output: accepted=true suspicious=false
}

// A hibernating attacker keeps its ratio above the threshold, but the
// behaviour test sees the burst.
func ExampleNewMultiTester() {
	rng := honestplayer.NewRNG(2)
	h, _ := honestplayer.GenHibernating("sleeper", 480, 0.97, 20, rng)
	tester, _ := honestplayer.NewMultiTester(honestplayer.TesterConfig{
		Calibrator: honestplayer.NewCalibrator(honestplayer.CalibrationConfig{Seed: 1, Replicates: 300}, 0),
	})
	v, _ := tester.Test(h)
	fmt.Printf("ratio=%.2f honest=%v\n", h.GoodRatio(), v.Honest)
	// Output: ratio=0.93 honest=false
}

// CUSUM alarms within a handful of transactions of a sharp quality drop.
func ExampleNewCUSUM() {
	c, _ := honestplayer.NewCUSUM(0.95, 0.5, 5)
	for i := 0; i < 100; i++ {
		c.Observe(true)
	}
	for !c.Alarmed() {
		c.Observe(false)
	}
	fmt.Printf("alarm after %d bad transactions\n", c.AlarmAt()-100)
	// Output: alarm after 3 bad transactions
}

// The Wilson interval quantifies how much a trust value means.
func ExampleWilsonInterval() {
	lo, hi, _ := honestplayer.WilsonInterval(9, 10, 1.96)
	fmt.Printf("9/10 good: [%.2f, %.2f]\n", lo, hi)
	lo, hi, _ = honestplayer.WilsonInterval(900, 1000, 1.96)
	fmt.Printf("900/1000 good: [%.2f, %.2f]\n", lo, hi)
	// Output:
	// 9/10 good: [0.60, 0.98]
	// 900/1000 good: [0.88, 0.92]
}
