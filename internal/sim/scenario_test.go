package sim

import (
	"strings"
	"testing"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

var scenarioCalibrator = stats.NewCalibrator(stats.CalibrationConfig{Seed: 9, Replicates: 300}, 0)

func scenarioAssessor(t *testing.T, withTester bool) *core.TwoPhase {
	t.Helper()
	var tester behavior.Tester
	if withTester {
		// Continuous assessment of honest servers needs the familywise
		// correction; without it the per-suffix 5% false-positive rate
		// compounds across dozens of suffixes.
		m, err := behavior.NewMulti(behavior.Config{
			Calibrator:           scenarioCalibrator,
			FamilywiseCorrection: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		tester = m
	}
	tp, err := core.NewTwoPhase(tester, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func baseConfig() Config {
	return Config{
		Seed:      1,
		Steps:     600,
		Clients:   100,
		Threshold: 0.9,
		Warmup:    150,
		Servers: []ServerSpec{
			{ID: "honest-1", Kind: Honest, P: 0.95},
			{ID: "honest-2", Kind: Honest, P: 0.92},
			{ID: "hibernator", Kind: Hibernating, P: 0.97, PrepLen: 200},
		},
	}
}

func TestRunValidation(t *testing.T) {
	tp := scenarioAssessor(t, false)
	if _, err := Run(Config{}, nil); err == nil {
		t.Error("nil assessor must fail")
	}
	bad := baseConfig()
	bad.Clients = 0
	if _, err := Run(bad, tp); err == nil {
		t.Error("0 clients must fail")
	}
	bad = baseConfig()
	bad.Servers = nil
	if _, err := Run(bad, tp); err == nil {
		t.Error("no servers must fail")
	}
	bad = baseConfig()
	bad.Servers = []ServerSpec{{ID: "", Kind: Honest, P: 0.9}}
	if _, err := Run(bad, tp); err == nil {
		t.Error("empty server ID must fail")
	}
	bad = baseConfig()
	bad.Servers = []ServerSpec{{ID: "x", Kind: Periodic, P: 0.9, AttackWindow: 0}}
	if _, err := Run(bad, tp); err == nil {
		t.Error("periodic without window must fail")
	}
	bad = baseConfig()
	bad.Servers = []ServerSpec{{ID: "x", Kind: ServerKind(99), P: 0.9}}
	if _, err := Run(bad, tp); err == nil {
		t.Error("unknown kind must fail")
	}
}

func TestRunDeterministic(t *testing.T) {
	tp := scenarioAssessor(t, false)
	a, err := Run(baseConfig(), tp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(), tp)
	if err != nil {
		t.Fatal(err)
	}
	if a.Transactions != b.Transactions || a.BadServed != b.BadServed {
		t.Fatalf("not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunBehaviorTestingReducesHarm(t *testing.T) {
	// The end-to-end claim of the paper: with phase-1 testing the
	// hibernating provider is flagged shortly after it turns, so clients
	// suffer fewer bad transactions than under the bare average function.
	cfg := baseConfig()
	bare, err := Run(cfg, scenarioAssessor(t, false))
	if err != nil {
		t.Fatal(err)
	}
	tested, err := Run(cfg, scenarioAssessor(t, true))
	if err != nil {
		t.Fatal(err)
	}
	hibBare := bare.PerServer["hibernator"]
	hibTested := tested.PerServer["hibernator"]
	if hibTested.BadServed >= hibBare.BadServed {
		t.Fatalf("behaviour testing did not reduce harm: bare=%d tested=%d",
			hibBare.BadServed, hibTested.BadServed)
	}
	if hibTested.Flagged == 0 {
		t.Fatal("hibernator was never flagged")
	}
}

func TestRunHonestServersKeepServing(t *testing.T) {
	cfg := Config{
		Seed: 3, Steps: 400, Clients: 50, Threshold: 0.9, Warmup: 150,
		Servers: []ServerSpec{{ID: "honest", Kind: Honest, P: 0.96}},
	}
	m, err := Run(cfg, scenarioAssessor(t, true))
	if err != nil {
		t.Fatal(err)
	}
	hm := m.PerServer["honest"]
	// The honest server must get the vast majority of assessed steps.
	if hm.Transactions < cfg.Steps*8/10 {
		t.Fatalf("honest server served only %d/%d assessed steps",
			hm.Transactions, cfg.Steps)
	}
}

func TestRunPeriodicProvider(t *testing.T) {
	cfg := Config{
		Seed: 4, Steps: 300, Clients: 50, Threshold: 0.85, Warmup: 200,
		Servers: []ServerSpec{
			{ID: "periodic", Kind: Periodic, P: 1.0, AttackWindow: 10, BadFrac: 0.1},
			{ID: "honest", Kind: Honest, P: 0.9},
		},
	}
	tested, err := Run(cfg, scenarioAssessor(t, true))
	if err != nil {
		t.Fatal(err)
	}
	pm := tested.PerServer["periodic"]
	if pm.Flagged == 0 {
		t.Fatal("deterministic periodic provider was never flagged")
	}
	if tested.Transactions == 0 {
		t.Fatal("no transactions happened")
	}
}

func TestMetricsConsistency(t *testing.T) {
	m, err := Run(baseConfig(), scenarioAssessor(t, false))
	if err != nil {
		t.Fatal(err)
	}
	totalTx, totalBad, totalWarmBad := 0, 0, 0
	for id, sm := range m.PerServer {
		totalTx += sm.Transactions
		totalBad += sm.BadServed
		totalWarmBad += sm.WarmupBad
		h, ok := m.Histories[id]
		if !ok {
			t.Fatalf("missing history for %s", id)
		}
		if h.Len() != sm.WarmupTransactions+sm.Transactions {
			t.Fatalf("%s: history len %d != warmup %d + assessed %d",
				id, h.Len(), sm.WarmupTransactions, sm.Transactions)
		}
		if h.Len()-h.GoodCount() != sm.WarmupBad+sm.BadServed {
			t.Fatalf("%s: bad mismatch", id)
		}
	}
	if totalTx != m.Transactions || totalBad != m.BadServed || totalWarmBad != m.WarmupBad {
		t.Fatalf("aggregates mismatch: %d/%d/%d vs %d/%d/%d",
			totalTx, totalBad, totalWarmBad, m.Transactions, m.BadServed, m.WarmupBad)
	}
}

func TestServerKindString(t *testing.T) {
	if Honest.String() != "honest" || Hibernating.String() != "hibernating" || Periodic.String() != "periodic" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(ServerKind(42).String(), "42") {
		t.Error("unknown kind must include value")
	}
}

func TestRunColludingProvider(t *testing.T) {
	cfg := Config{
		Seed: 9, Steps: 400, Clients: 60, Threshold: 0.9, Warmup: 200,
		Servers: []ServerSpec{
			{ID: "honest", Kind: Honest, P: 0.93},
			{ID: "ring", Kind: Colluding, P: 0.97, Colluders: 5},
		},
	}
	// Issuer-blind assessor: the ring's colluder-built reputation gets it
	// selected, and every real client it serves gets cheated.
	blind, err := core.NewTwoPhase(nil, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	mBlind, err := Run(cfg, blind)
	if err != nil {
		t.Fatal(err)
	}
	ringBlind := mBlind.PerServer["ring"]
	if ringBlind.FakeFeedback == 0 {
		t.Fatal("no fakes injected")
	}
	if ringBlind.BadServed == 0 {
		t.Fatal("ring never got to cheat under the blind assessor")
	}

	// Collusion-resilient assessor: the ring is flagged and starved.
	colTester, err := behavior.NewCollusion(behavior.Config{Calibrator: scenarioCalibrator})
	if err != nil {
		t.Fatal(err)
	}
	resilient, err := core.NewTwoPhase(colTester, trust.Average{})
	if err != nil {
		t.Fatal(err)
	}
	mRes, err := Run(cfg, resilient)
	if err != nil {
		t.Fatal(err)
	}
	ringRes := mRes.PerServer["ring"]
	if ringRes.BadServed >= ringBlind.BadServed {
		t.Fatalf("collusion testing did not reduce ring harm: %d vs %d",
			ringRes.BadServed, ringBlind.BadServed)
	}
	if ringRes.Flagged == 0 {
		t.Fatal("ring never flagged by the collusion tester")
	}
}

func TestColludingSpecValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.Servers = []ServerSpec{{ID: "x", Kind: Colluding, P: 0.9, Colluders: 0}}
	if _, err := Run(cfg, scenarioAssessor(t, false)); err == nil {
		t.Fatal("colluding without ring size must fail")
	}
	if Colluding.String() != "colluding" {
		t.Fatal("kind string")
	}
}
