package behavior

// Incremental-state serialization for the assessment accumulator: the
// history-dependent counters — phase window histograms, stride checkpoints,
// the good-count prefix ring, and the per-issuer series of the collusion
// modes — freeze into a compact varint blob and restore exactly. The memo
// structures (the PMF arena, threshold grids, collusion Binomial memo) are
// pure caches over those counters and are deliberately NOT serialized: a
// restored accumulator rebuilds them lazily, and because every cached value
// is a pure function of its key the verdicts are unaffected.
//
// A node snapshot persists one blob per server so a rebooting -incremental
// node resumes assessment state directly instead of re-feeding millions of
// historical records through Append.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"honestplayer/internal/feedback"
)

// ErrBadState reports an accumulator state blob that does not decode, or
// that was produced under a different tester configuration.
var ErrBadState = errors.New("behavior: bad accumulator state")

// accStateVersion tags the blob layout; bump on incompatible change.
const accStateVersion = 1

// AppendState appends the accumulator's serialized essential state to buf.
// The caller must ensure Append is not running concurrently (the store's
// shard write lock provides this); concurrent Tests are safe because Test
// never mutates the serialized fields.
func (a *Accumulator) AppendState(buf []byte) []byte {
	buf = append(buf, accStateVersion, byte(a.mode))
	buf = binary.AppendUvarint(buf, uint64(a.cfg.WindowSize))
	buf = binary.AppendUvarint(buf, uint64(a.cfg.Stride))
	buf = binary.AppendUvarint(buf, uint64(a.cfg.MinWindows))
	buf = binary.AppendUvarint(buf, uint64(a.n))
	buf = binary.AppendUvarint(buf, uint64(a.goodTotal))
	if a.clients != nil {
		return a.appendClientState(buf)
	}
	return a.appendPhaseState(buf)
}

func (a *Accumulator) appendPhaseState(buf []byte) []byte {
	for _, v := range a.prefRing {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	for i := range a.phases {
		ph := &a.phases[i]
		buf = binary.AppendUvarint(buf, uint64(ph.windows))
		buf = binary.AppendUvarint(buf, uint64(ph.sum))
		for _, c := range ph.counts {
			buf = binary.AppendUvarint(buf, uint64(c))
		}
		buf = binary.AppendUvarint(buf, uint64(len(ph.checkpoints)))
		for _, cp := range ph.checkpoints {
			buf = binary.AppendUvarint(buf, uint64(cp.sum))
			for _, c := range cp.counts {
				buf = binary.AppendUvarint(buf, uint64(c))
			}
		}
	}
	return buf
}

func (a *Accumulator) appendClientState(buf []byte) []byte {
	// Deterministic order so equal states encode byte-identically.
	ids := make([]feedback.EntityID, 0, len(a.clients))
	for id := range a.clients {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		cs := a.clients[id]
		buf = binary.AppendUvarint(buf, uint64(len(id)))
		buf = append(buf, id...)
		buf = binary.AppendUvarint(buf, uint64(len(cs.idx)))
		prev := 0
		for _, v := range cs.idx {
			buf = binary.AppendUvarint(buf, uint64(v-prev))
			prev = v
		}
		// The good prefix steps by 0 or 1 per record: a bitset reproduces it.
		var cur byte
		for i := 1; i < len(cs.good); i++ {
			if cs.good[i] > cs.good[i-1] {
				cur |= 1 << ((i - 1) % 8)
			}
			if (i-1)%8 == 7 {
				buf = append(buf, cur)
				cur = 0
			}
		}
		if len(cs.idx)%8 != 0 {
			buf = append(buf, cur)
		}
	}
	return buf
}

// RestoreState replaces the accumulator's state with the blob's. The
// accumulator must be freshly minted by NewAccumulatorFor from a tester
// with the same configuration (window size, stride, minimum windows, mode)
// that produced the blob; mismatches are detected and rejected.
func (a *Accumulator) RestoreState(data []byte) error {
	if a.n != 0 {
		return fmt.Errorf("%w: restore into a non-empty accumulator (%d records)", ErrBadState, a.n)
	}
	if len(data) < 2 {
		return fmt.Errorf("%w: short header", ErrBadState)
	}
	if data[0] != accStateVersion {
		return fmt.Errorf("%w: state version %d, want %d", ErrBadState, data[0], accStateVersion)
	}
	if accMode(data[1]) != a.mode {
		return fmt.Errorf("%w: state mode %d, accumulator mode %d", ErrBadState, data[1], a.mode)
	}
	data = data[2:]
	var fields [5]uint64
	var err error
	for i := range fields {
		if fields[i], data, err = readUvarint(data); err != nil {
			return err
		}
	}
	if int(fields[0]) != a.cfg.WindowSize || int(fields[1]) != a.cfg.Stride || int(fields[2]) != a.cfg.MinWindows {
		return fmt.Errorf("%w: state for m=%d stride=%d minWindows=%d, accumulator has m=%d stride=%d minWindows=%d",
			ErrBadState, fields[0], fields[1], fields[2], a.cfg.WindowSize, a.cfg.Stride, a.cfg.MinWindows)
	}
	n, goodTotal := int(fields[3]), int(fields[4])
	if goodTotal > n {
		return fmt.Errorf("%w: good %d > n %d", ErrBadState, goodTotal, n)
	}
	if a.clients != nil {
		if err := a.restoreClientState(data, n); err != nil {
			return err
		}
	} else {
		if err := a.restorePhaseState(data, n); err != nil {
			return err
		}
	}
	a.n, a.goodTotal = n, goodTotal
	return nil
}

func (a *Accumulator) restorePhaseState(data []byte, n int) error {
	m := a.cfg.WindowSize
	prefRing := make([]int, m+1)
	var err error
	var v uint64
	for i := range prefRing {
		if v, data, err = readUvarint(data); err != nil {
			return err
		}
		prefRing[i] = int(v)
	}
	phases := make([]accPhase, m)
	totalWindows := 0
	for i := range phases {
		ph := &phases[i]
		if v, data, err = readUvarint(data); err != nil {
			return err
		}
		ph.windows = int(v)
		totalWindows += ph.windows
		if v, data, err = readUvarint(data); err != nil {
			return err
		}
		ph.sum = int64(v)
		ph.counts = make([]int64, m+1)
		var sum int64
		for j := range ph.counts {
			if v, data, err = readUvarint(data); err != nil {
				return err
			}
			ph.counts[j] = int64(v)
			sum += int64(v)
		}
		if sum != int64(ph.windows) {
			return fmt.Errorf("%w: phase %d counts sum %d, windows %d", ErrBadState, i, sum, ph.windows)
		}
		if v, data, err = readUvarint(data); err != nil {
			return err
		}
		numCP := int(v)
		ws := a.cfg.Stride / m
		if wantCP := (ph.windows + ws - 1) / ws; numCP != wantCP && !(ph.windows == 0 && numCP == 0) {
			return fmt.Errorf("%w: phase %d has %d checkpoints, want %d", ErrBadState, i, numCP, wantCP)
		}
		ph.checkpoints = make([]checkpoint, numCP)
		for c := range ph.checkpoints {
			cp := &ph.checkpoints[c]
			if v, data, err = readUvarint(data); err != nil {
				return err
			}
			cp.sum = int64(v)
			cp.counts = make([]int32, m+1)
			for j := range cp.counts {
				if v, data, err = readUvarint(data); err != nil {
					return err
				}
				cp.counts[j] = int32(v)
			}
		}
	}
	// Every append past the first m-1 records completes exactly one window.
	if n >= m && totalWindows != n-m+1 {
		return fmt.Errorf("%w: %d windows across phases, want %d for n=%d", ErrBadState, totalWindows, n-m+1, n)
	}
	if n < m && totalWindows != 0 {
		return fmt.Errorf("%w: %d windows for n=%d < m=%d", ErrBadState, totalWindows, n, m)
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadState, len(data))
	}
	a.prefRing = prefRing
	a.phases = phases
	return nil
}

func (a *Accumulator) restoreClientState(data []byte, n int) error {
	var err error
	var v uint64
	if v, data, err = readUvarint(data); err != nil {
		return err
	}
	numClients := int(v)
	clients := make(map[feedback.EntityID]*clientSeries, numClients)
	total := 0
	for c := 0; c < numClients; c++ {
		if v, data, err = readUvarint(data); err != nil {
			return err
		}
		idLen := int(v)
		if idLen <= 0 || idLen > len(data) {
			return fmt.Errorf("%w: client id length %d", ErrBadState, idLen)
		}
		id := feedback.EntityID(data[:idLen])
		data = data[idLen:]
		if _, dup := clients[id]; dup {
			return fmt.Errorf("%w: duplicate client %q", ErrBadState, id)
		}
		if v, data, err = readUvarint(data); err != nil {
			return err
		}
		cnt := int(v)
		if cnt <= 0 || cnt > n-total {
			return fmt.Errorf("%w: client %q has %d records of %d remaining", ErrBadState, id, cnt, n-total)
		}
		total += cnt
		cs := &clientSeries{idx: make([]int, cnt), good: make([]int, cnt+1)}
		prev := -1
		for i := 0; i < cnt; i++ {
			if v, data, err = readUvarint(data); err != nil {
				return err
			}
			idx := prev + int(v)
			if i == 0 {
				idx = int(v)
			}
			if idx <= prev || idx >= n {
				return fmt.Errorf("%w: client %q index %d out of order or range", ErrBadState, id, idx)
			}
			cs.idx[i] = idx
			prev = idx
		}
		nBytes := (cnt + 7) / 8
		if len(data) < nBytes {
			return fmt.Errorf("%w: short good bitset for %q", ErrBadState, id)
		}
		for i := 0; i < cnt; i++ {
			cs.good[i+1] = cs.good[i]
			if data[i/8]&(1<<(i%8)) != 0 {
				cs.good[i+1]++
			}
		}
		data = data[nBytes:]
		clients[id] = cs
	}
	if total != n {
		return fmt.Errorf("%w: client series cover %d records, want %d", ErrBadState, total, n)
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadState, len(data))
	}
	a.clients = clients
	return nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: short uvarint", ErrBadState)
	}
	return v, buf[n:], nil
}
