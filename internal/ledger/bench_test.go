package ledger

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"honestplayer/internal/feedback"
)

func BenchmarkAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.jsonl")
	l, _, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := feedback.Feedback{
			Time: time.Unix(int64(i), 0).UTC(), Server: "s", Client: "c",
			Rating: feedback.Positive,
		}
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.jsonl")
	l, _, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		rec := feedback.Feedback{
			Time: time.Unix(int64(i), 0).UTC(), Server: "s", Client: "c",
			Rating: feedback.Positive,
		}
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2, recs, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != 10000 {
			b.Fatalf("replayed %d", len(recs))
		}
		if err := l2.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotBoot measures a full snapshot+tail open of a 200k-record
// ledger with the incremental engine on — the boot path the checked-in
// BENCH_boot.json exercises at 100k/1M records.
func BenchmarkSnapshotBoot(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "led")
	opts, _ := incrementalOptions(b, 4, 8<<20, 0)
	ps, err := OpenStoreOptions(context.Background(), dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	const n = 200000
	for i := 0; i < n; i++ {
		r := feedback.Positive
		if i%20 == 19 {
			r = feedback.Negative
		}
		f := feedback.Feedback{
			Time:   time.Unix(int64(i), 0).UTC(),
			Server: feedback.EntityID(fmt.Sprintf("s%03d", i%64)),
			Client: feedback.EntityID(fmt.Sprintf("c%02d", i%37)),
			Rating: r,
		}
		if _, err := ps.Add(f); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := ps.Snapshot(); err != nil {
		b.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts, _ := incrementalOptions(b, 4, 8<<20, 0)
		ps, err := OpenStoreOptions(context.Background(), dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		if ps.Stats().BootMode != "snapshot" {
			b.Fatal("not a snapshot boot")
		}
		if err := ps.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
