package sim

import (
	"math"
	"testing"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

func TestNewPopulationValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, err := NewPopulation("c", 0, 0, 0, 0, rng); err == nil {
		t.Error("size 0 must fail")
	}
	if _, err := NewPopulation("c", 10, 0, 0, 0, nil); err == nil {
		t.Error("nil rng must fail")
	}
	if _, err := NewPopulation("c", 10, -0.5, 0, 0, rng); err == nil {
		t.Error("negative a1 must fail")
	}
	if _, err := NewPopulation("c", 10, 0, 1.5, 0, rng); err == nil {
		t.Error("a2 > 1 must fail")
	}
}

func TestPopulationDefaults(t *testing.T) {
	p, err := NewPopulation("c", 100, 0, 0, 0, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.a1 != DefaultA1 || p.a2 != DefaultA2 || p.a3 != DefaultA3 {
		t.Fatalf("defaults = %v %v %v", p.a1, p.a2, p.a3)
	}
	if p.Size() != 100 {
		t.Fatalf("Size = %d", p.Size())
	}
}

func TestPopulationNextReturnsMember(t *testing.T) {
	p, err := NewPopulation("c", 20, 0, 0, 0, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	members := make(map[feedback.EntityID]bool, 20)
	for _, c := range p.clients {
		members[c] = true
	}
	for i := 0; i < 200; i++ {
		c := p.Next(0.9)
		if !members[c] {
			t.Fatalf("Next returned non-member %q", c)
		}
	}
}

func TestPopulationArrivalBias(t *testing.T) {
	// Clients who recently got good service (a2=0.9) must arrive far more
	// often than recently-disappointed ones (a3=0.2).
	p, err := NewPopulation("c", 40, 0, 0, 0, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	// Mark half good, half bad.
	for i, c := range p.clients {
		p.Observe(c, i%2 == 0)
	}
	goodArrivals, badArrivals := 0, 0
	for i := 0; i < 3000; i++ {
		c := p.Next(0.9)
		if p.state[c] == stateRecentGood {
			goodArrivals++
		} else if p.state[c] == stateRecentBad {
			badArrivals++
		}
	}
	ratio := float64(goodArrivals) / float64(badArrivals+1)
	want := DefaultA2 / DefaultA3 // 4.5
	if math.Abs(ratio-want) > 1.5 {
		t.Fatalf("good/bad arrival ratio = %v, want ~%v", ratio, want)
	}
}

func TestPopulationNewClientReputationScaling(t *testing.T) {
	// New clients arrive proportionally to reputation: a server with
	// reputation 0.2 attracts fresh clients much less often than one at 1.0.
	count := func(rep float64) int {
		p, err := NewPopulation("c", 50, 0, 0, 0, stats.NewRNG(4))
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for i := 0; i < 500; i++ {
			_ = p.Next(rep)
			n++ // Next always returns someone; measure via arrivalProb below
		}
		return n
	}
	_ = count // Next loops until someone arrives, so compare probabilities directly.
	p, err := NewPopulation("c", 50, 0, 0, 0, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	lo := p.arrivalProb(p.clients[0], 0.2)
	hi := p.arrivalProb(p.clients[0], 1.0)
	if math.Abs(lo-0.1) > 1e-12 || math.Abs(hi-0.5) > 1e-12 {
		t.Fatalf("arrivalProb = %v / %v, want 0.1 / 0.5", lo, hi)
	}
}

func TestPopulationObserveAndStateCounts(t *testing.T) {
	p, err := NewPopulation("c", 10, 0, 0, 0, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	fresh, good, bad := p.StateCounts()
	if fresh != 10 || good != 0 || bad != 0 {
		t.Fatalf("initial counts = %d %d %d", fresh, good, bad)
	}
	p.Observe(p.clients[0], true)
	p.Observe(p.clients[1], false)
	p.Observe(p.clients[2], true)
	fresh, good, bad = p.StateCounts()
	if fresh != 7 || good != 2 || bad != 1 {
		t.Fatalf("counts = %d %d %d", fresh, good, bad)
	}
	// Re-observation flips state.
	p.Observe(p.clients[0], false)
	_, good, bad = p.StateCounts()
	if good != 1 || bad != 2 {
		t.Fatalf("after flip: good=%d bad=%d", good, bad)
	}
}

func TestPopulationZeroReputationLiveness(t *testing.T) {
	// With reputation 0 and all clients new, arrival probability is 0; the
	// fallback must still return a client rather than loop forever.
	p, err := NewPopulation("c", 5, 0, 0, 0, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if c := p.Next(0); c == "" {
		t.Fatal("Next returned empty client")
	}
}
