package feedback

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Codec errors.
var (
	// ErrCorruptRecord reports a malformed encoded record.
	ErrCorruptRecord = errors.New("feedback: corrupt record")
	// ErrRecordTooLarge reports an encoded record above the size limit.
	ErrRecordTooLarge = errors.New("feedback: record too large")
)

// maxEntityLen bounds entity IDs in the binary encoding; it doubles as a
// corruption guard when decoding untrusted streams.
const maxEntityLen = 1024

// WriteJSONLines encodes records as newline-delimited JSON, one record per
// line. It is the interchange format of the wire protocol and CLI tools.
func WriteJSONLines(w io.Writer, recs []Feedback) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range recs {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONLines decodes newline-delimited JSON records until EOF, validating
// each.
func ReadJSONLines(r io.Reader) ([]Feedback, error) {
	dec := json.NewDecoder(r)
	var out []Feedback
	for i := 0; ; i++ {
		var f Feedback
		if err := dec.Decode(&f); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("decode record %d: %w", i, err)
		}
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		out = append(out, f)
	}
}

// AppendBinary appends the compact binary encoding of f to buf and returns
// the extended buffer. Layout: unix-nano time (8 bytes big-endian), rating
// (1 byte), then length-prefixed server and client IDs (2-byte lengths).
func AppendBinary(buf []byte, f Feedback) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if len(f.Server) > maxEntityLen || len(f.Client) > maxEntityLen {
		return nil, fmt.Errorf("%w: entity id above %d bytes", ErrRecordTooLarge, maxEntityLen)
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(f.Time.UnixNano()))
	buf = append(buf, byte(f.Rating))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(f.Server)))
	buf = append(buf, f.Server...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(f.Client)))
	buf = append(buf, f.Client...)
	return buf, nil
}

// DecodeBinary decodes one record from the front of buf and returns it along
// with the remaining bytes.
func DecodeBinary(buf []byte) (Feedback, []byte, error) {
	var f Feedback
	if len(buf) < 8+1+2 {
		return f, nil, fmt.Errorf("%w: short header", ErrCorruptRecord)
	}
	nanos := int64(binary.BigEndian.Uint64(buf))
	f.Time = time.Unix(0, nanos).UTC()
	f.Rating = Rating(buf[8])
	buf = buf[9:]
	var err error
	f.Server, buf, err = decodeEntity(buf)
	if err != nil {
		return f, nil, err
	}
	f.Client, buf, err = decodeEntity(buf)
	if err != nil {
		return f, nil, err
	}
	if err := f.Validate(); err != nil {
		return f, nil, fmt.Errorf("%w: %v", ErrCorruptRecord, err)
	}
	return f, buf, nil
}

func decodeEntity(buf []byte) (EntityID, []byte, error) {
	if len(buf) < 2 {
		return "", nil, fmt.Errorf("%w: short length", ErrCorruptRecord)
	}
	n := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if n > maxEntityLen {
		return "", nil, fmt.Errorf("%w: entity length %d", ErrRecordTooLarge, n)
	}
	if len(buf) < n {
		return "", nil, fmt.Errorf("%w: truncated entity", ErrCorruptRecord)
	}
	return EntityID(buf[:n]), buf[n:], nil
}

// EncodeBinaryAll encodes all records back to back.
func EncodeBinaryAll(recs []Feedback) ([]byte, error) {
	var buf []byte
	for i, r := range recs {
		var err error
		buf, err = AppendBinary(buf, r)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
	}
	return buf, nil
}

// DecodeBinaryAll decodes records until the buffer is exhausted.
func DecodeBinaryAll(buf []byte) ([]Feedback, error) {
	var out []Feedback
	for len(buf) > 0 {
		var (
			f   Feedback
			err error
		)
		f, buf, err = DecodeBinary(buf)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", len(out), err)
		}
		out = append(out, f)
	}
	return out, nil
}
