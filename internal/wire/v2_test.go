package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
)

func testRecord(i int) feedback.Feedback {
	r := feedback.Positive
	if i%3 == 0 {
		r = feedback.Negative
	}
	return feedback.Feedback{
		Time:   time.Unix(int64(1000+i), int64(i)*1000).UTC(),
		Server: "srv-a",
		Client: feedback.EntityID("client-" + strings.Repeat("x", i%4)),
		Rating: r,
	}
}

func testAssessment() core.Assessment {
	return core.Assessment{
		Server:    "srv-a",
		Trust:     0.9375,
		TrustLow:  0.81,
		TrustHigh: 0.97,
		Tester:    "multi",
		TrustFunc: "average",
		Verdict: behavior.Verdict{
			Honest: true,
			Suffixes: []behavior.SuffixResult{
				{Transactions: 40, Windows: 4, PHat: 0.95, Distance: 0.12, Threshold: 0.2, Pass: true},
				{Transactions: 20, Windows: 2, PHat: 0.9, Distance: 0.3, Threshold: 0.2, Pass: false},
			},
		},
	}
}

// v2Payloads is every payload with a binary codec, exercised by the
// round-trip and cross-codec tests below.
func v2Payloads() map[MsgType]any {
	return map[MsgType]any{
		TypeSubmit:  SubmitRequest{Feedback: testRecord(1)},
		TypeSubmitR: SubmitResponse{Stored: true},
		TypeSubmitB: BatchRequest{Records: []feedback.Feedback{testRecord(1), testRecord(2), testRecord(3)}},
		TypeSubmitBR: BatchResponse{Stored: 2, Duplicates: 1, Rejected: []BatchReject{
			{Index: 3, Reason: "zero time"}, {Index: 5, Reason: "missing server"},
		}, Items: []SubmitBatchItem{
			{Stored: true},
			{Stored: false}, // duplicate: not stored, no error
			{Error: &ErrorResponse{Code: CodeInvalidFeedback, Message: "zero time"}},
			{Stored: true},
		}},
		TypeHistory:  HistoryRequest{Server: "srv-a", Limit: 25},
		TypeHistoryR: HistoryResponse{Records: []feedback.Feedback{testRecord(4), testRecord(5)}, Total: 99},
		TypeAssess:   AssessRequest{Server: "srv-a", Threshold: 0.875},
		TypeAssessR:  AssessResponse{Assessment: testAssessment(), Accept: true, Incremental: true},
		TypeAssessB:  AssessBatchRequest{Servers: []feedback.EntityID{"a", "b", "c"}, Threshold: 0.9},
		TypeAssessBR: AssessBatchResponse{Items: []AssessBatchItem{
			{Server: "a", AssessResponse: AssessResponse{Assessment: testAssessment(), Accept: true}},
			{Server: "b", Error: &ErrorResponse{Code: CodeUnknownServer, Message: `no records for "b"`}},
		}},
		TypeError:     ErrorResponse{Code: CodeBadRequest, Message: "boom"},
		TypeFwdAssess: FwdAssessRequest{Node: "n2", Server: "srv-a", Threshold: 0.875, DigestOnly: true},
		TypeFwdAssessR: NodeAssessment{Node: "n1", Records: 4200, Version: 77, XOR: 0xdeadbeefcafe, AssessResponse: AssessResponse{
			Assessment: testAssessment(), Accept: true, Incremental: true,
		}},
		TypeFwdSubmit:  FwdSubmitRequest{Node: "n3", Feedback: testRecord(2), Replica: true},
		TypeFwdSubmitR: SubmitResponse{Stored: true},
		TypeFwdBatch:   FwdBatchRequest{Node: "n2", Records: []feedback.Feedback{testRecord(1), testRecord(2)}},
		TypeFwdBatchR:  BatchResponse{Stored: 2},
		TypeFwdAssessB: FwdAssessBatchRequest{Node: "n1", Servers: []feedback.EntityID{"a", "b"}, Threshold: 0.9},
		TypeFwdAssessBR: FwdAssessBatchResponse{Node: "n3", Items: []AssessBatchItem{
			{Server: "a", AssessResponse: AssessResponse{
				Assessment: testAssessment(), Accept: true, Merged: true, MergedFrom: []string{"n1", "n3"},
			}},
			{Server: "b", Error: &ErrorResponse{Code: CodeUnavailable, Message: "owner down"}},
		}},
	}
}

// newPayload returns a zero destination of the same concrete type as p.
func newPayload(p any) any {
	return reflect.New(reflect.TypeOf(p)).Interface()
}

func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0] == '{' {
		t.Fatal("hello must not start like a JSON frame")
	}
	ver, err := ReadHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ver != VersionV2 {
		t.Fatalf("offered version %d, want %d", ver, VersionV2)
	}
	buf.Reset()
	if err := WriteHelloAck(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ReadHelloAck(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestReadHelloRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "\xb2", "\xb2W2", "\xb2W2\x02X", "\xb2XX\x02\n", "{\"v\":1}\n"} {
		if _, err := ReadHello(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadHello(%q) accepted", in)
		}
	}
	// Version below v2 is a version error, not a parse error.
	if _, err := ReadHello(strings.NewReader("\xb2W2\x01\n")); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("old version: got %v, want ErrBadVersion", err)
	}
	// Future versions are accepted and reported.
	ver, err := ReadHello(strings.NewReader("\xb2W2\x07\n"))
	if err != nil || ver != 7 {
		t.Fatalf("future version: got %d, %v", ver, err)
	}
}

func TestReadHelloAckDetectsJSONFallback(t *testing.T) {
	err := ReadHelloAck(strings.NewReader(`{"v":1,"type":"error","id":0,"payload":{}}` + "\n"))
	if !errors.Is(err, ErrNotV2) {
		t.Fatalf("got %v, want ErrNotV2", err)
	}
}

func TestV2FrameRoundTrip(t *testing.T) {
	for typ, payload := range v2Payloads() {
		env, err := V2Codec.Encode(typ, 42, payload)
		if err != nil {
			t.Fatalf("%s: encode: %v", typ, err)
		}
		if !env.Binary {
			t.Fatalf("%s: expected binary payload", typ)
		}
		var buf bytes.Buffer
		if err := WriteV2(&buf, env); err != nil {
			t.Fatalf("%s: write: %v", typ, err)
		}
		got, err := ReadV2(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("%s: read: %v", typ, err)
		}
		if got.Type != typ || got.ID != 42 || !got.Binary {
			t.Fatalf("%s: frame header %+v", typ, got)
		}
		out := newPayload(payload)
		if err := DecodePayload(got, out); err != nil {
			t.Fatalf("%s: decode: %v", typ, err)
		}
		if got := reflect.ValueOf(out).Elem().Interface(); !reflect.DeepEqual(got, payload) {
			t.Fatalf("%s: round trip:\n got %+v\nwant %+v", typ, got, payload)
		}
	}
}

// TestV2JSONPayloadFallback covers types without a binary codec: they cross
// a v2 connection as JSON payload bytes with the flag bit set.
func TestV2JSONPayloadFallback(t *testing.T) {
	msg := SummaryMsg{Node: "n1", Servers: map[string]ServerSum{"s": {Count: 3, XOR: 7}}}
	env, err := V2Codec.Encode(TypeSummary, 9, msg)
	if err != nil {
		t.Fatal(err)
	}
	if env.Binary {
		t.Fatal("gossip summary should fall back to JSON payload")
	}
	var buf bytes.Buffer
	if err := WriteV2(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadV2(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Binary {
		t.Fatal("JSON flag lost in framing")
	}
	var out SummaryMsg
	if err := DecodePayload(got, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, msg) {
		t.Fatalf("got %+v, want %+v", out, msg)
	}
}

// TestV2EmptyPayload pins the ping/pong shape: ten body bytes, nil payload.
func TestV2EmptyPayload(t *testing.T) {
	env, err := V2Codec.Encode(TypePing, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteV2(&buf, env); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != v2HeaderLen {
		t.Fatalf("ping frame is %d bytes, want %d", buf.Len(), v2HeaderLen)
	}
	got, err := ReadV2(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload != nil || got.Type != TypePing || got.ID != 1 {
		t.Fatalf("frame %+v", got)
	}
}

// TestCrossCodecFidelity proves equal verdict fidelity between the two
// encodings: the same payload decodes identically whether it crossed the
// wire as JSON or as v2 binary.
func TestCrossCodecFidelity(t *testing.T) {
	for typ, payload := range v2Payloads() {
		jenv, err := JSONCodec.Encode(typ, 1, payload)
		if err != nil {
			t.Fatalf("%s: json encode: %v", typ, err)
		}
		benv, err := V2Codec.Encode(typ, 1, payload)
		if err != nil {
			t.Fatalf("%s: v2 encode: %v", typ, err)
		}
		fromJSON, fromBin := newPayload(payload), newPayload(payload)
		if err := DecodePayload(jenv, fromJSON); err != nil {
			t.Fatalf("%s: json decode: %v", typ, err)
		}
		if err := DecodePayload(benv, fromBin); err != nil {
			t.Fatalf("%s: binary decode: %v", typ, err)
		}
		// Compare the time fields by instant, everything else structurally:
		// both decoders normalise times to UTC, so DeepEqual holds for the
		// payloads above (all timestamps are constructed in UTC).
		if !reflect.DeepEqual(fromJSON, fromBin) {
			t.Fatalf("%s: codecs disagree:\n json %+v\n  v2  %+v", typ, fromJSON, fromBin)
		}
	}
}

func TestV2FrameLimit(t *testing.T) {
	big := Envelope{V: VersionV2, Type: TypeSubmit, ID: 1, Binary: true, Payload: make([]byte, MaxFrame)}
	if err := WriteV2(io.Discard, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write: got %v, want ErrFrameTooLarge", err)
	}
	// A forged oversized length prefix must be rejected before any payload
	// allocation or read.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadV2(bufio.NewReader(&buf)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read: got %v, want ErrFrameTooLarge", err)
	}
}

func TestV2RejectsUndersizedBody(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 5}) // body shorter than type+flags+id
	buf.Write(make([]byte, 16))
	if _, err := ReadV2(bufio.NewReader(&buf)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("got %v, want ErrBadMessage", err)
	}
}

func TestBinaryDecodeStrictness(t *testing.T) {
	env, err := V2Codec.Encode(TypeAssess, 1, AssessRequest{Server: "s", Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Trailing garbage after a complete payload is a protocol violation.
	withTrailing := append(append([]byte(nil), env.Payload...), 0xFF)
	var req AssessRequest
	if err := decodeBinaryPayload(TypeAssess, withTrailing, &req); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Every truncation of a valid payload must fail, never panic.
	for cut := 0; cut < len(env.Payload); cut++ {
		var req AssessRequest
		if err := decodeBinaryPayload(TypeAssess, env.Payload[:cut], &req); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A count that promises more elements than the remaining bytes could
	// hold must be rejected without allocating for it.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0x0f} // uvarint ~4e9
	var batch BatchRequest
	if err := decodeBinaryPayload(TypeSubmitB, huge, &batch); err == nil {
		t.Fatal("oversized count accepted")
	}
}

// TestReadV2IntoReuse is the pooled-buffer aliasing regression test: a
// payload decoded from a reused read buffer must stay intact after the
// buffer is overwritten by the next frame. DecodePayload must copy
// everything it keeps (strings, records) out of the frame buffer.
func TestReadV2IntoReuse(t *testing.T) {
	var stream bytes.Buffer
	first, _ := V2Codec.Encode(TypeAssess, 1, AssessRequest{Server: "server-alpha", Threshold: 0.25})
	second, _ := V2Codec.Encode(TypeAssess, 2, AssessRequest{Server: "server-beta!", Threshold: 0.75})
	if err := WriteV2(&stream, first); err != nil {
		t.Fatal(err)
	}
	if err := WriteV2(&stream, second); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&stream)
	env1, buf, err := ReadV2Into(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	var req1 AssessRequest
	if err := DecodePayload(env1, &req1); err != nil {
		t.Fatal(err)
	}
	// Same buffer, second frame: this overwrites env1's payload bytes.
	env2, _, err := ReadV2Into(r, buf)
	if err != nil {
		t.Fatal(err)
	}
	var req2 AssessRequest
	if err := DecodePayload(env2, &req2); err != nil {
		t.Fatal(err)
	}
	if req1.Server != "server-alpha" || req1.Threshold != 0.25 {
		t.Fatalf("first decode corrupted by buffer reuse: %+v", req1)
	}
	if req2.Server != "server-beta!" || req2.Threshold != 0.75 {
		t.Fatalf("second decode wrong: %+v", req2)
	}
}

// TestWriteRejectsBinaryEnvelope pins the cross-framing guard: a v2 binary
// payload must never be spliced into a JSON frame.
func TestWriteRejectsBinaryEnvelope(t *testing.T) {
	env, err := V2Codec.Encode(TypeSubmitR, 1, SubmitResponse{Stored: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(io.Discard, env); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("got %v, want ErrBadMessage", err)
	}
}

func TestWriteV2RejectsUnknownType(t *testing.T) {
	err := WriteV2(io.Discard, Envelope{V: VersionV2, Type: "nonsense", ID: 1})
	if err == nil {
		t.Fatal("unknown type accepted")
	}
}
