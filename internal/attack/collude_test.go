package attack

import (
	"errors"
	"testing"

	"honestplayer/internal/behavior"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

func colluders(n int) []feedback.EntityID {
	out := make([]feedback.EntityID, n)
	for i := range out {
		out[i] = feedback.EntityID(rune('A' + i))
	}
	return out
}

func collusionTester(t *testing.T) behavior.Tester {
	t.Helper()
	c, err := behavior.NewCollusion(testerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestColludingValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	h, _ := PrepareByColluders("a", 200, 0.95, colluders(5), rng)
	src := &UniformClients{Pool: 95, RNG: rng}
	tests := []Colluding{
		{Assessor: nil, Threshold: 0.9, GoalBad: 1, Colluders: colluders(5)},
		{Assessor: assessor(t, nil, trust.Average{}), Threshold: 0.9, GoalBad: 1, Colluders: nil},
		{Assessor: assessor(t, nil, trust.Average{}), Threshold: 2, GoalBad: 1, Colluders: colluders(5)},
		{Assessor: assessor(t, nil, trust.Average{}), Threshold: 0.9, GoalBad: 0, Colluders: colluders(5)},
	}
	for i, c := range tests {
		if _, err := c.Run(h, src, rng); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: %v", i, err)
		}
	}
	ok := Colluding{Assessor: assessor(t, nil, trust.Average{}), Threshold: 0.9, GoalBad: 1, Colluders: colluders(5)}
	if _, err := ok.Run(h, nil, rng); !errors.Is(err, ErrBadParams) {
		t.Errorf("nil source: %v", err)
	}
}

func TestColludingBaselineFreeRide(t *testing.T) {
	// Paper §5.2: without behaviour testing, colluders let the attacker
	// reach its goal without providing any good services.
	rng := stats.NewRNG(11)
	h, err := PrepareByColluders("a", 300, 0.95, colluders(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	c := Colluding{
		Assessor:  assessor(t, nil, trust.Average{}),
		Threshold: 0.9,
		GoalBad:   20,
		Colluders: colluders(5),
	}
	src := &UniformClients{Pool: 95, RNG: rng}
	cost, err := c.Run(h, src, rng)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Bad != 20 {
		t.Fatalf("bad = %d", cost.Bad)
	}
	if cost.Good != 0 {
		t.Fatalf("baseline collusion cost = %d good transactions, want 0", cost.Good)
	}
}

func TestColludingResilientTestingForcesRealService(t *testing.T) {
	// With collusion-resilient multi-testing the attacker must serve real
	// clients well; fake feedback alone cannot keep the issuer-ordered
	// distribution binomial over the recent suffixes.
	rng := stats.NewRNG(13)
	h, err := PrepareByColluders("a", 300, 0.95, colluders(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := behavior.NewCollusionMulti(testerConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := Colluding{
		Assessor:  assessor(t, cm, trust.Average{}),
		Threshold: 0.9,
		GoalBad:   10,
		Colluders: colluders(5),
		MaxSteps:  20000,
	}
	src := &UniformClients{Pool: 95, RNG: rng}
	cost, err := c.Run(h, src, rng)
	if err != nil {
		// Reaching the goal may be outright impossible within budget —
		// that is an even stronger defence outcome.
		if errors.Is(err, ErrGoalUnreachable) {
			if cost.Good == 0 {
				t.Fatalf("goal unreachable yet no good services forced: %+v", cost)
			}
			return
		}
		t.Fatal(err)
	}
	if cost.Good == 0 {
		t.Fatalf("collusion-resilient testing imposed no real cost: %+v", cost)
	}
}

func TestColludingRunsWithSingleCollusionTester(t *testing.T) {
	rng := stats.NewRNG(17)
	h, err := PrepareByColluders("a", 200, 0.95, colluders(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	c := Colluding{
		Assessor:  assessor(t, collusionTester(t), trust.Average{}),
		Threshold: 0.9,
		GoalBad:   5,
		Colluders: colluders(5),
		MaxSteps:  5000,
	}
	src := &UniformClients{Pool: 95, RNG: rng}
	cost, err := c.Run(h, src, rng)
	if err != nil && !errors.Is(err, ErrGoalUnreachable) {
		t.Fatal(err)
	}
	if cost.Steps == 0 {
		t.Fatal("attack did not run")
	}
}

func TestUniformClients(t *testing.T) {
	src := &UniformClients{Pool: 10, RNG: stats.NewRNG(1)}
	seen := make(map[feedback.EntityID]bool)
	for i := 0; i < 200; i++ {
		c := src.Next(0.9)
		if c == "" {
			t.Fatal("empty client")
		}
		seen[c] = true
		src.Observe(c, true)
	}
	if len(seen) < 8 {
		t.Fatalf("saw only %d distinct clients", len(seen))
	}
}
