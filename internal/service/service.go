// Package service is the transport-agnostic request layer shared by the
// serving stack: a handler registry keyed by message type, wrapped in a
// composable interceptor chain (panic recovery, per-request deadline
// enforcement, per-type metrics, slow-request logging).
//
// The registry decouples "what a request does" from "how its bytes arrive":
// handlers see only a context and an envelope, so the same pipeline serves
// TCP today and can serve pooled/multiplexed transports later. Interceptors
// compose like gRPC middleware — each wraps the next handler and may
// short-circuit (the deadline interceptor abandons a stalled handler and
// returns context.DeadlineExceeded while the handler goroutine winds down
// on its own).
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"honestplayer/internal/wire"
)

// Handler serves one request envelope. The returned envelope is written
// back to the caller; a non-nil error is converted to a TypeError frame
// (see ErrorEnvelope) carrying the request id.
type Handler func(ctx context.Context, env wire.Envelope) (wire.Envelope, error)

// Interceptor wraps a handler with cross-cutting behaviour. The first
// interceptor passed to Chain is the outermost.
type Interceptor func(next Handler) Handler

// Registry maps message types to handlers.
type Registry struct {
	handlers map[wire.MsgType]Handler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{handlers: make(map[wire.MsgType]Handler)}
}

// Register binds a handler to a message type, replacing any previous
// binding. Registration is not synchronised: register everything before
// serving.
func (r *Registry) Register(t wire.MsgType, h Handler) {
	if h == nil {
		panic("service: nil handler for " + string(t))
	}
	r.handlers[t] = h
}

// Lookup returns the handler for a message type.
func (r *Registry) Lookup(t wire.MsgType) (Handler, bool) {
	h, ok := r.handlers[t]
	return h, ok
}

// Types returns the registered message types in sorted order.
func (r *Registry) Types() []wire.MsgType {
	out := make([]wire.MsgType, 0, len(r.handlers))
	for t := range r.handlers {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Chain wraps h in the given interceptors; the first interceptor is the
// outermost (runs first on the way in, last on the way out).
func Chain(h Handler, interceptors ...Interceptor) Handler {
	for i := len(interceptors) - 1; i >= 0; i-- {
		h = interceptors[i](h)
	}
	return h
}

// Errorf builds a protocol error with an explicit code. Handlers return it
// to produce a typed error frame instead of a generic internal error.
func Errorf(code, format string, args ...any) error {
	return &wire.ErrorResponse{Code: code, Message: fmt.Sprintf(format, args...)}
}

// ErrorEnvelope converts a handler error into a TypeError envelope for the
// given request id. Protocol errors (*wire.ErrorResponse) keep their code;
// context expiry maps to wire.CodeDeadlineExceeded / wire.CodeCanceled;
// everything else is wire.CodeInternal.
func ErrorEnvelope(id uint64, err error) wire.Envelope {
	resp := wire.ErrorResponse{Code: wire.CodeInternal, Message: err.Error()}
	var proto *wire.ErrorResponse
	switch {
	case errors.As(err, &proto):
		resp = *proto
	case errors.Is(err, context.DeadlineExceeded):
		resp.Code = wire.CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		resp.Code = wire.CodeCanceled
	}
	env, encErr := wire.Encode(wire.TypeError, id, resp)
	if encErr != nil {
		// An ErrorResponse always marshals; this is unreachable, but never
		// return a zero envelope from an error path.
		env, _ = wire.Encode(wire.TypeError, id, wire.ErrorResponse{Code: wire.CodeInternal, Message: "encode error response"})
	}
	return env
}

// panicError carries a panic value recovered on another goroutine (the
// Deadline interceptor's handler goroutine) back to the calling chain as an
// ordinary error, so Recover can log and convert it even though a deferred
// recover() on the calling goroutine could never catch it.
type panicError struct {
	value any
}

func (p *panicError) Error() string { return fmt.Sprintf("panic: %v", p.value) }

// Recover returns an interceptor converting handler panics into internal
// errors so one bad request cannot take down the whole process. It handles
// both panics on the calling goroutine and panics recovered on the Deadline
// interceptor's handler goroutine (surfaced as a *panicError). logf
// receives a diagnostic line (nil disables logging).
func Recover(logf func(format string, args ...any)) Interceptor {
	return func(next Handler) Handler {
		return func(ctx context.Context, env wire.Envelope) (out wire.Envelope, err error) {
			defer func() {
				if r := recover(); r != nil {
					if logf != nil {
						logf("panic serving %s id=%d: %v", env.Type, env.ID, r)
					}
					out, err = wire.Envelope{}, Errorf(wire.CodeInternal, "internal error serving %s", env.Type)
				}
			}()
			out, err = next(ctx, env)
			var pe *panicError
			if errors.As(err, &pe) {
				if logf != nil {
					logf("panic serving %s id=%d: %v", env.Type, env.ID, pe.value)
				}
				out, err = wire.Envelope{}, Errorf(wire.CodeInternal, "internal error serving %s", env.Type)
			}
			return out, err
		}
	}
}

// Deadline returns an interceptor that bounds each request to d (no bound
// when d <= 0) and enforces context cancellation even against a handler
// that never returns: the handler runs on its own goroutine and the
// interceptor abandons it when the context expires first, returning
// ctx.Err(). The abandoned goroutine finishes in the background; its result
// is discarded through a buffered channel so it never blocks.
func Deadline(d time.Duration) Interceptor {
	return func(next Handler) Handler {
		return func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
			if d > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, d)
				defer cancel()
			}
			type result struct {
				env wire.Envelope
				err error
			}
			done := make(chan result, 1)
			go func() {
				// recover() only catches panics on its own goroutine, so an
				// outer Recover interceptor cannot see a panic raised here.
				// Convert it to a *panicError result instead; Recover treats
				// that error exactly like a direct panic.
				defer func() {
					if r := recover(); r != nil {
						done <- result{wire.Envelope{}, &panicError{value: r}}
					}
				}()
				env, err := next(ctx, env)
				done <- result{env, err}
			}()
			select {
			case r := <-done:
				return r.env, r.err
			case <-ctx.Done():
				return wire.Envelope{}, ctx.Err()
			}
		}
	}
}

// WithMetrics returns an interceptor recording per-type request counts,
// error counts, and latency into m. It sits outside the deadline
// interceptor so a timed-out request is observed at its timeout (with a
// deadline_exceeded error), not whenever the abandoned handler finishes.
func WithMetrics(m *Metrics) Interceptor {
	return func(next Handler) Handler {
		return func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
			start := time.Now()
			out, err := next(ctx, env)
			m.Observe(env.Type, time.Since(start), err != nil)
			return out, err
		}
	}
}

// SlowLog returns an interceptor logging any request slower than threshold
// (disabled when threshold <= 0 or logf is nil).
func SlowLog(logf func(format string, args ...any), threshold time.Duration) Interceptor {
	return func(next Handler) Handler {
		if threshold <= 0 || logf == nil {
			return next
		}
		return func(ctx context.Context, env wire.Envelope) (wire.Envelope, error) {
			start := time.Now()
			out, err := next(ctx, env)
			if elapsed := time.Since(start); elapsed >= threshold {
				logf("slow request: %s id=%d took %s (err=%v)", env.Type, env.ID, elapsed, err)
			}
			return out, err
		}
	}
}
