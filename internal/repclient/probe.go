package repclient

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Probe-based multi-node dialing. DialCluster measures the round trip to
// every node at dial time (a full dial + protocol negotiation + ping, the
// same work a real request pays), keeps the connection to the fastest node,
// and remembers the others ranked by RTT as failover targets. When the
// preferred connection breaks, the existing poisoned-connection machinery
// redials — but through the ranked list instead of a single address, so
// callers transparently land on the nearest surviving node.

// probeResult is one node's measured dial outcome.
type probeResult struct {
	addr   string
	client *Client
	rtt    time.Duration
	err    error
}

// DialCluster connects to the fastest-responding of several equivalent
// nodes. Every address is probed concurrently (dial, negotiate, ping,
// measuring the full round trip); the fastest successful connection is kept
// and the rest closed. Dialing fails only when every node is unreachable.
// The returned client fails over across the surviving addresses on redial.
func DialCluster(addrs []string, opts ...Option) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("repclient: no addresses")
	}
	if len(addrs) == 1 {
		return Dial(addrs[0], opts...)
	}
	results := make([]probeResult, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			results[i] = probe(addr, opts)
		}(i, addr)
	}
	wg.Wait()

	best := -1
	for i, r := range results {
		if r.err != nil {
			continue
		}
		if best < 0 || r.rtt < results[best].rtt {
			best = i
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("repclient: all %d nodes unreachable (first: %w)", len(addrs), results[0].err)
	}
	c := results[best].client
	c.mu.Lock()
	c.addrs = append([]string(nil), addrs...)
	c.rtts = make(map[string]time.Duration, len(addrs))
	for _, r := range results {
		if r.err == nil {
			c.rtts[r.addr] = r.rtt
		}
		if r.client != nil && r.client != c {
			// Close loser connections outside their own lock; they never
			// escaped this function, so nothing else can be using them.
			_ = r.client.conn.Close()
			r.client.closed = true
		}
	}
	c.mu.Unlock()
	return c, nil
}

// probe dials one address and measures the full round trip including
// protocol negotiation and a ping — the realistic cost of a first request.
func probe(addr string, opts []Option) probeResult {
	start := time.Now()
	c, err := Dial(addr, opts...)
	if err != nil {
		return probeResult{addr: addr, err: err}
	}
	if err := c.Ping(); err != nil {
		_ = c.Close()
		return probeResult{addr: addr, err: err}
	}
	return probeResult{addr: addr, client: c, rtt: time.Since(start)}
}

// Addr reports the address of the node the client currently talks to.
func (c *Client) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr
}

// RTTs reports the last measured round trip per probed address (only
// addresses that answered a probe appear). Nil for single-address clients.
func (c *Client) RTTs() map[string]time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rtts == nil {
		return nil
	}
	out := make(map[string]time.Duration, len(c.rtts))
	for a, d := range c.rtts {
		out[a] = d
	}
	return out
}

// failoverOrderLocked returns the addresses to try on a redial: the current
// address first (a transient blip should not migrate the client), then the
// rest by ascending probed RTT, unprobed addresses last. Called with c.mu
// held.
func (c *Client) failoverOrderLocked() []string {
	order := make([]string, 0, len(c.addrs))
	order = append(order, c.addr)
	rest := make([]string, 0, len(c.addrs))
	for _, a := range c.addrs {
		if a != c.addr {
			rest = append(rest, a)
		}
	}
	sort.SliceStable(rest, func(i, j int) bool {
		ri, iok := c.rtts[rest[i]]
		rj, jok := c.rtts[rest[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		default:
			return false
		}
	})
	return append(order, rest...)
}

// connectAnyLocked establishes a connection to any configured address in
// failover order. On success c.addr is the connected address. Called with
// c.mu held.
func (c *Client) connectAnyLocked(ctx context.Context) error {
	if len(c.addrs) <= 1 {
		return c.connectLocked(ctx)
	}
	var firstErr error
	for _, addr := range c.failoverOrderLocked() {
		c.addr = addr
		if err := c.connectLocked(ctx); err == nil {
			return nil
		} else if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
