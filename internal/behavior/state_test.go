package behavior_test

// Round-trip tests for accumulator state serialization: a restored
// accumulator must be observationally identical to the original — same
// Test() verdicts and errors, bit for bit, immediately after restore and as
// both keep consuming feedback.

import (
	"reflect"
	"testing"

	"honestplayer/internal/attack"
	"honestplayer/internal/behavior"
	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

// stateHistories picks two histories that exercise both the phase modes
// (mixed outcomes across window alignments) and the collusion modes
// (multiple issuers with different record counts).
func stateHistories(t *testing.T) map[string]*feedback.History {
	t.Helper()
	out := make(map[string]*feedback.History)
	h, err := attack.GenPeriodic("srv-periodic", 90, 15, 0.5, stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	out["periodic"] = h
	h, err = attack.PrepareByColluders("srv-colluded", 80, 0.9,
		[]feedback.EntityID{"col-a", "col-b", "col-c"}, stats.NewRNG(22))
	if err != nil {
		t.Fatal(err)
	}
	out["colluders"] = h
	return out
}

func TestAccumulatorStateRoundTrip(t *testing.T) {
	cfg := behavior.Config{WindowSize: 5, MinWindows: 2, Stride: 10,
		FamilywiseCorrection: true, Calibrator: fastCalibrator(31)}
	for testerName, tester := range diffTesters(t, cfg) {
		for histName, h := range stateHistories(t) {
			t.Run(testerName+"/"+histName, func(t *testing.T) {
				for cut := 0; cut <= h.Len(); cut += 7 {
					orig, ok := behavior.NewAccumulatorFor(tester)
					if !ok {
						t.Fatal("NewAccumulatorFor failed")
					}
					for i := 0; i < cut; i++ {
						orig.Append(h.At(i))
					}
					blob := orig.AppendState(nil)
					restored, _ := behavior.NewAccumulatorFor(tester)
					if err := restored.RestoreState(blob); err != nil {
						t.Fatalf("cut %d: RestoreState: %v", cut, err)
					}
					requireSameTest(t, cut, orig, restored)
					// The restored state must re-encode byte-identically:
					// serialization is canonical.
					if blob2 := restored.AppendState(nil); !reflect.DeepEqual(blob, blob2) {
						t.Fatalf("cut %d: re-encoded state differs", cut)
					}
					for i := cut; i < h.Len(); i++ {
						orig.Append(h.At(i))
						restored.Append(h.At(i))
					}
					requireSameTest(t, h.Len(), orig, restored)
				}
			})
		}
	}
}

func requireSameTest(t *testing.T, n int, a, b *behavior.Accumulator) {
	t.Helper()
	if a.Len() != b.Len() || a.GoodCount() != b.GoodCount() {
		t.Fatalf("n=%d: counts differ: (%d,%d) vs (%d,%d)",
			n, a.Len(), a.GoodCount(), b.Len(), b.GoodCount())
	}
	av, aerr := a.Test()
	bv, berr := b.Test()
	requireSameOutcome(t, "restored", n, bv, berr, av, aerr)
}

// TestAccumulatorStateRejects checks config/mode mismatches and corruption.
func TestAccumulatorStateRejects(t *testing.T) {
	cfg := behavior.Config{WindowSize: 5, MinWindows: 2, Stride: 10, Calibrator: fastCalibrator(32)}
	testers := diffTesters(t, cfg)
	h := stateHistories(t)["periodic"]
	orig, _ := behavior.NewAccumulatorFor(testers["multi"])
	for i := 0; i < h.Len(); i++ {
		orig.Append(h.At(i))
	}
	blob := orig.AppendState(nil)

	// Mode mismatch.
	wrong, _ := behavior.NewAccumulatorFor(testers["collusion"])
	if err := wrong.RestoreState(blob); err == nil {
		t.Fatal("mode mismatch accepted")
	}
	// Config mismatch.
	cfg2 := cfg
	cfg2.WindowSize = 2
	otherTesters := diffTesters(t, cfg2)
	wrongCfg, _ := behavior.NewAccumulatorFor(otherTesters["multi"])
	if err := wrongCfg.RestoreState(blob); err == nil {
		t.Fatal("config mismatch accepted")
	}
	// Non-empty target.
	busy, _ := behavior.NewAccumulatorFor(testers["multi"])
	busy.Append(h.At(0))
	if err := busy.RestoreState(blob); err == nil {
		t.Fatal("restore into non-empty accumulator accepted")
	}
	// Truncations must never panic and never half-apply: a failed restore
	// leaves the accumulator usable and empty.
	for cut := 0; cut < len(blob); cut++ {
		fresh, _ := behavior.NewAccumulatorFor(testers["multi"])
		if err := fresh.RestoreState(blob[:cut]); err == nil {
			t.Fatalf("truncated blob (%d of %d bytes) accepted", cut, len(blob))
		}
		if fresh.Len() != 0 {
			t.Fatalf("failed restore mutated accumulator (n=%d)", fresh.Len())
		}
	}
}
