// Package experiment regenerates every figure of the paper's evaluation
// (Figs. 3–9). Each experiment is a pure function of its configuration —
// seeds included — and returns a Result carrying the same series the paper
// plots, renderable as an ASCII table or CSV.
//
// Absolute numbers depend on the machine (Fig. 9) and on stochastic detail
// the paper does not pin down; the reproduced artefact is the *shape* of
// each figure: which scheme wins, how cost scales with preparation size,
// where detection decays.
package experiment

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"honestplayer/internal/stats"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is one named line of a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Result is a regenerated figure.
type Result struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	XLabel string   `json:"xLabel"`
	YLabel string   `json:"yLabel"`
	Series []Series `json:"series"`
	Notes  []string `json:"notes,omitempty"`
}

// Table renders the result as a fixed-width ASCII table with one row per x
// value and one column per series, matching the paper's figure layout.
func (r *Result) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", strings.ToUpper(r.ID), r.Title)
	fmt.Fprintf(&sb, "x = %s, y = %s\n", r.XLabel, r.YLabel)

	xs := r.xValues()
	cols := make([]string, 0, len(r.Series)+1)
	cols = append(cols, r.XLabel)
	for _, s := range r.Series {
		cols = append(cols, s.Name)
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
		if widths[i] < 12 {
			widths[i] = 12
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteString("\n")
	}
	writeRow(cols)
	for _, x := range xs {
		cells := []string{formatFloat(x)}
		for _, s := range r.Series {
			y, ok := s.at(x)
			if ok {
				cells = append(cells, formatFloat(y))
			} else {
				cells = append(cells, "-")
			}
		}
		writeRow(cells)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the result as comma-separated values with a header row.
func (r *Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("x")
	for _, s := range r.Series {
		sb.WriteString(",")
		sb.WriteString(strings.ReplaceAll(s.Name, ",", ";"))
	}
	sb.WriteString("\n")
	for _, x := range r.xValues() {
		sb.WriteString(formatFloat(x))
		for _, s := range r.Series {
			sb.WriteString(",")
			if y, ok := s.at(x); ok {
				sb.WriteString(formatFloat(y))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func (s Series) at(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

func (r *Result) xValues() []float64 {
	seen := make(map[float64]struct{})
	var xs []float64
	for _, s := range r.Series {
		for _, p := range s.Points {
			if _, ok := seen[p.X]; !ok {
				seen[p.X] = struct{}{}
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 5, 64)
}

// Shared experiment defaults, straight from §5.
const (
	// DefaultThreshold is the clients' trust threshold.
	DefaultThreshold = 0.9
	// DefaultPrepP is the attacker's trustworthiness during preparation.
	DefaultPrepP = 0.95
	// DefaultGoalBad is the number of attacks (M) the adversary wants.
	DefaultGoalBad = 20
	// DefaultWindowSize is the transaction window m.
	DefaultWindowSize = 10
	// DefaultLambda is the weighted trust function's λ.
	DefaultLambda = 0.5
)

// defaultPrepSizes is the x axis of Figs. 3–6: the size of the attacker's
// initial (preparation) history.
func defaultPrepSizes() []int { return []int{100, 200, 300, 400, 500, 600, 700, 800} }

// newCalibrator builds the shared threshold calibrator used by an
// experiment run. Replicates are configurable to trade precision for speed.
func newCalibrator(seed uint64, replicates int) *stats.Calibrator {
	if replicates == 0 {
		replicates = 500
	}
	return stats.NewCalibrator(stats.CalibrationConfig{Seed: seed, Replicates: replicates}, 0)
}
