package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewBinomialValidation(t *testing.T) {
	tests := []struct {
		name string
		n    int
		p    float64
		ok   bool
	}{
		{"valid", 10, 0.5, true},
		{"p zero", 10, 0, true},
		{"p one", 10, 1, true},
		{"n zero", 0, 0.5, true},
		{"negative n", -1, 0.5, false},
		{"p negative", 10, -0.1, false},
		{"p above one", 10, 1.1, false},
		{"p NaN", 10, math.NaN(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewBinomial(tt.n, tt.p)
			if (err == nil) != tt.ok {
				t.Fatalf("NewBinomial(%d, %v) error = %v, want ok=%v", tt.n, tt.p, err, tt.ok)
			}
			if err != nil && !errors.Is(err, ErrInvalidDistribution) {
				t.Fatalf("error %v does not wrap ErrInvalidDistribution", err)
			}
		})
	}
}

func TestBinomialPMFKnownValues(t *testing.T) {
	// B(10, 0.9): closed-form reference values.
	b := MustBinomial(10, 0.9)
	tests := []struct {
		k    int
		want float64
	}{
		{10, math.Pow(0.9, 10)},                       // 0.34867844...
		{9, 10 * math.Pow(0.9, 9) * 0.1},              // 0.38742049...
		{8, 45 * math.Pow(0.9, 8) * math.Pow(0.1, 2)}, // 0.19371024...
		{0, math.Pow(0.1, 10)},
	}
	for _, tt := range tests {
		if got := b.PMF(tt.k); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("PMF(%d) = %v, want %v", tt.k, got, tt.want)
		}
	}
}

func TestBinomialPMFOutOfSupport(t *testing.T) {
	b := MustBinomial(5, 0.5)
	if b.PMF(-1) != 0 || b.PMF(6) != 0 {
		t.Error("PMF outside support must be 0")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{1, 0.5}, {10, 0.9}, {10, 0.95}, {50, 0.01}, {200, 0.7}, {10, 0}, {10, 1}} {
		b := MustBinomial(tc.n, tc.p)
		sum := 0.0
		for k := 0; k <= tc.n; k++ {
			sum += b.PMF(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("B(%d,%v): PMF sums to %v", tc.n, tc.p, sum)
		}
	}
}

func TestBinomialPMFNormalisationProperty(t *testing.T) {
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw % 64)
		p := float64(pRaw) / math.MaxUint16
		b := MustBinomial(n, p)
		sum := 0.0
		for k := 0; k <= n; k++ {
			if b.PMF(k) < 0 {
				return false
			}
			sum += b.PMF(k)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBinomialCDFMonotone(t *testing.T) {
	b := MustBinomial(30, 0.42)
	prev := 0.0
	for k := 0; k <= 30; k++ {
		c := b.CDF(k)
		if c < prev-1e-15 {
			t.Fatalf("CDF not monotone at k=%d: %v < %v", k, c, prev)
		}
		prev = c
	}
	if math.Abs(b.CDF(30)-1) > 1e-9 {
		t.Fatalf("CDF(n) = %v, want 1", b.CDF(30))
	}
	if b.CDF(-1) != 0 {
		t.Fatal("CDF(-1) must be 0")
	}
	if b.CDF(1000) != 1 {
		t.Fatal("CDF beyond support must be 1")
	}
}

func TestBinomialQuantile(t *testing.T) {
	b := MustBinomial(10, 0.5)
	if got := b.Quantile(0.5); got != 5 {
		t.Errorf("median of B(10,.5) = %d, want 5", got)
	}
	if got := b.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %d, want 0", got)
	}
	if got := b.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %d, want 10", got)
	}
}

func TestBinomialQuantileCDFInverse(t *testing.T) {
	b := MustBinomial(20, 0.8)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		k := b.Quantile(q)
		if b.CDF(k) < q {
			t.Errorf("CDF(Quantile(%v)) = %v < %v", q, b.CDF(k), q)
		}
		if k > 0 && b.CDF(k-1) >= q {
			t.Errorf("Quantile(%v) = %d not minimal", q, k)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	b := MustBinomial(40, 0.3)
	if got, want := b.Mean(), 12.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := b.Variance(), 8.4; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got, want := b.StdDev(), math.Sqrt(8.4); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestBinomialSampleMatchesPMF(t *testing.T) {
	// χ² goodness of fit between sampler and PMF.
	b := MustBinomial(10, 0.9)
	rng := NewRNG(99)
	const draws = 100000
	obs := make([]int64, 11)
	for i := 0; i < draws; i++ {
		obs[b.Sample(rng)]++
	}
	stat, err := ChiSquareStat(obs, b.PMFTable(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Conservative bound: well under the χ² 0.999 quantile for <=10 dof.
	if stat > 35 {
		t.Fatalf("sampler vs PMF χ² = %v, too large", stat)
	}
}

func TestBinomialSampleN(t *testing.T) {
	b := MustBinomial(10, 0.5)
	rng := NewRNG(1)
	xs := b.SampleN(rng, 500)
	if len(xs) != 500 {
		t.Fatalf("SampleN returned %d values", len(xs))
	}
	for _, x := range xs {
		if x < 0 || x > 10 {
			t.Fatalf("sample %d out of support", x)
		}
	}
}

func TestBinomialString(t *testing.T) {
	if got := MustBinomial(10, 0.9).String(); got != "B(10, 0.9)" {
		t.Errorf("String() = %q", got)
	}
}

func TestBinomialPMFTableIsCopy(t *testing.T) {
	b := MustBinomial(5, 0.5)
	tab := b.PMFTable()
	tab[0] = 99
	if b.PMF(0) == 99 {
		t.Fatal("PMFTable exposed internal state")
	}
}

func TestBinomialMLE(t *testing.T) {
	tests := []struct {
		name   string
		m      int
		counts []int
		want   float64
		ok     bool
	}{
		{"basic", 10, []int{9, 10, 8, 9}, 36.0 / 40.0, true},
		{"all perfect", 10, []int{10, 10}, 1, true},
		{"all zero", 10, []int{0, 0}, 0, true},
		{"empty", 10, nil, 0, false},
		{"bad m", 0, []int{1}, 0, false},
		{"count too large", 10, []int{11}, 0, false},
		{"negative count", 10, []int{-1}, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := BinomialMLE(tt.m, tt.counts)
			if (err == nil) != tt.ok {
				t.Fatalf("error = %v, want ok=%v", err, tt.ok)
			}
			if err == nil && math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("MLE = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMustBinomialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBinomial(-1, .5) did not panic")
		}
	}()
	MustBinomial(-1, 0.5)
}
