// Package assesscache memoises two-phase trust assessments on the serving
// hot path. A TypeAssess request over an unchanged history is the common
// case in steady state — clients re-check a server far more often than the
// server transacts — yet the seed served every request by re-running the
// full behaviour test over the whole record list. The cache turns that into
// an O(1) lookup, in the same spirit as the paper's Scheme-2 incremental
// statistics: never recompute what an unchanged history already decided.
//
// Entries are keyed by (server, threshold) and stamped with the store's
// per-server version counter. A hit requires the stamped version to equal
// the store's current version, so any accepted write — which bumps the
// counter — invalidates every cached assessment of that server without the
// store and cache ever needing to talk to each other. Capacity is bounded
// by an LRU policy.
package assesscache

import (
	"container/list"
	"sync"

	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
)

// DefaultCapacity bounds the cache when the caller passes no capacity.
const DefaultCapacity = 4096

// Result is one memoised assessment outcome: the full assessment plus the
// accept decision for the keyed threshold.
type Result struct {
	Assessment core.Assessment
	Accept     bool
}

// Stats exposes cache counters. Invalidation counts stale entries dropped
// because the server's history changed; those lookups also count as misses.
type Stats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	Size          int    `json:"size"`
}

type key struct {
	server    feedback.EntityID
	threshold float64
}

type cacheEntry struct {
	key     key
	version uint64
	res     Result
}

// Cache is a bounded LRU of assessment results. It is safe for concurrent
// use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	byKey   map[key]*list.Element
	lru     *list.List // front = most recently used
	hits    uint64
	misses  uint64
	evicted uint64
	staled  uint64
}

// New returns a cache holding at most capacity entries; capacity < 1 means
// DefaultCapacity.
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:   capacity,
		byKey: make(map[key]*list.Element, capacity),
		lru:   list.New(),
	}
}

// Get returns the cached result for (server, threshold) if it was computed
// at exactly the given store version. A version mismatch drops the stale
// entry and reports a miss — this is how a write to the store invalidates
// the cache.
func (c *Cache) Get(server feedback.EntityID, version uint64, threshold float64) (Result, bool) {
	k := key{server: server, threshold: threshold}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.misses++
		return Result{}, false
	}
	ce := el.Value.(*cacheEntry)
	if ce.version != version {
		c.lru.Remove(el)
		delete(c.byKey, k)
		c.staled++
		c.misses++
		return Result{}, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return ce.res, true
}

// Put stores the result computed for (server, threshold) at the given store
// version, replacing any previous entry for the key and evicting the least
// recently used entry when over capacity.
func (c *Cache) Put(server feedback.EntityID, version uint64, threshold float64, res Result) {
	k := key{server: server, threshold: threshold}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		ce := el.Value.(*cacheEntry)
		ce.version = version
		ce.res = res
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[k] = c.lru.PushFront(&cacheEntry{key: k, version: version, res: res})
	if c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evicted,
		Invalidations: c.staled,
		Size:          c.lru.Len(),
	}
}
