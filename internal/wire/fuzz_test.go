package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"honestplayer/internal/feedback"
)

// FuzzRead ensures the frame reader never panics and respects the frame
// limit on arbitrary input.
func FuzzRead(f *testing.F) {
	env, _ := Encode(TypePing, 1, nil)
	var buf bytes.Buffer
	_ = Write(&buf, env)
	f.Add(buf.Bytes())
	f.Add([]byte("{}\n"))
	f.Add([]byte("garbage with no newline"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if got.V != Version || got.Type == "" {
			t.Fatalf("accepted invalid envelope: %+v", got)
		}
	})
}

// fuzzPayloadDest returns a fresh decode destination for a frame type, nil
// for types whose payload has no binary codec.
func fuzzPayloadDest(t MsgType) any {
	switch t {
	case TypeSubmit:
		return new(SubmitRequest)
	case TypeSubmitR:
		return new(SubmitResponse)
	case TypeSubmitB:
		return new(BatchRequest)
	case TypeSubmitBR:
		return new(BatchResponse)
	case TypeHistory:
		return new(HistoryRequest)
	case TypeHistoryR:
		return new(HistoryResponse)
	case TypeAssess:
		return new(AssessRequest)
	case TypeAssessR:
		return new(AssessResponse)
	case TypeAssessB:
		return new(AssessBatchRequest)
	case TypeAssessBR:
		return new(AssessBatchResponse)
	case TypeError:
		return new(ErrorResponse)
	}
	return nil
}

// FuzzReadV2 ensures the binary frame reader and the per-type payload
// decoders never panic, never allocate past the frame limit, and re-encode
// decodable payloads losslessly.
func FuzzReadV2(f *testing.F) {
	addFrame := func(t MsgType, id uint64, payload any) {
		env, err := V2Codec.Encode(t, id, payload)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteV2(&buf, env); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	addFrame(TypePing, 1, nil)
	addFrame(TypeAssess, 7, AssessRequest{Server: "srv-a", Threshold: 0.9})
	addFrame(TypeAssessR, 7, AssessResponse{Assessment: testAssessment(), Accept: true})
	addFrame(TypeSubmitB, 3, BatchRequest{Records: []feedback.Feedback{testRecord(1), testRecord(2)}})
	addFrame(TypeError, 0, ErrorResponse{Code: CodeBadRequest, Message: "bad"})
	f.Add([]byte{0, 0, 0, 10, 1, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte("\xff\xff\xff\xff"))
	f.Add([]byte("{\"v\":1,\"type\":\"ping\",\"id\":1}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ReadV2(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if env.V != VersionV2 || env.Type == "" {
			t.Fatalf("accepted invalid v2 envelope: %+v", env)
		}
		if !env.Binary {
			return // JSON-flagged payloads are covered by FuzzRead's decoder
		}
		dest := fuzzPayloadDest(env.Type)
		if dest == nil {
			return
		}
		if err := DecodePayload(env, dest); err != nil {
			return
		}
		// Whatever decoded must survive a re-encode/decode round trip
		// without error — the codec may not accept values it cannot carry.
		reenc, err := V2Codec.Encode(env.Type, env.ID, dest)
		if err != nil {
			t.Fatalf("re-encode of decoded %s payload failed: %v", env.Type, err)
		}
		if reenc.Binary {
			dest2 := fuzzPayloadDest(env.Type)
			if err := DecodePayload(reenc, dest2); err != nil {
				t.Fatalf("re-decode of %s payload failed: %v", env.Type, err)
			}
		}
	})
}

// FuzzSubmitBatch drives the submit.batch payload codecs — BatchRequest on
// the way in, BatchResponse (aggregates, rejects, and the per-item slots)
// on the way out — over arbitrary payload bytes. Invariants: no panic, no
// out-of-bounds allocation from hostile counts (the codec carries any count;
// MaxSubmitBatch is the server's concern), and whatever decodes must survive
// a lossless re-encode/decode round trip.
func FuzzSubmitBatch(f *testing.F) {
	addPayload := func(typ MsgType, payload any) {
		env, err := V2Codec.Encode(typ, 1, payload)
		if err != nil {
			f.Fatal(err)
		}
		if !env.Binary {
			f.Fatalf("%s payload has no binary codec", typ)
		}
		f.Add(typ == TypeSubmitBR, []byte(env.Payload))
	}
	addPayload(TypeSubmitB, BatchRequest{})
	addPayload(TypeSubmitB, BatchRequest{Records: []feedback.Feedback{testRecord(1)}})
	addPayload(TypeSubmitB, BatchRequest{Records: []feedback.Feedback{
		testRecord(1), testRecord(2), testRecord(3),
	}})
	addPayload(TypeSubmitBR, BatchResponse{Stored: 3})
	addPayload(TypeSubmitBR, BatchResponse{
		Stored: 1, Duplicates: 1,
		Rejected: []BatchReject{{Index: 2, Reason: "zero time"}},
		Items: []SubmitBatchItem{
			{Stored: true},
			{Stored: false},
			{Error: &ErrorResponse{Code: CodeInvalidFeedback, Message: "zero time"}},
		},
	})
	f.Add(false, []byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(true, []byte{0x03, 0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, isResp bool, data []byte) {
		typ := TypeSubmitB
		var dest any = new(BatchRequest)
		if isResp {
			typ = TypeSubmitBR
			dest = new(BatchResponse)
		}
		env := Envelope{V: VersionV2, Type: typ, ID: 1, Payload: data, Binary: true}
		if err := DecodePayload(env, dest); err != nil {
			return
		}
		reenc, err := V2Codec.Encode(typ, 1, dest)
		if err != nil {
			t.Fatalf("re-encode of decoded %s payload failed: %v", typ, err)
		}
		dest2 := fuzzPayloadDest(typ)
		if err := DecodePayload(reenc, dest2); err != nil {
			t.Fatalf("re-decode of %s payload failed: %v", typ, err)
		}
		if !reflect.DeepEqual(dest, dest2) {
			t.Fatalf("%s payload not lossless:\n first: %+v\nsecond: %+v", typ, dest, dest2)
		}
	})
}

// FuzzNegotiate drives the server-side first-byte dispatch — the same
// peek-then-branch the repserver accept path performs — over arbitrary
// connection openings. Invariants: no panic, JSON openings never reach the
// v2 path, and a well-formed hello always negotiates.
func FuzzNegotiate(f *testing.F) {
	var hello bytes.Buffer
	_ = WriteHello(&hello)
	f.Add(hello.Bytes())
	f.Add([]byte(`{"v":1,"type":"ping","id":1}` + "\n"))
	f.Add([]byte{HelloMagic})
	f.Add([]byte("\xb2W2\x01\n"))
	f.Add([]byte("\xb2XY\x02\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		first, err := r.Peek(1)
		if err != nil {
			return
		}
		if first[0] != HelloMagic {
			// JSON path: the line reader must handle whatever follows.
			_, _ = Read(r)
			return
		}
		ver, err := ReadHello(r)
		if err != nil {
			if len(data) >= 5 && bytes.Equal(data[:3], helloPrefix[:]) &&
				data[3] >= VersionV2 && data[4] == '\n' {
				t.Fatalf("well-formed hello rejected: %v", err)
			}
			return
		}
		if ver < VersionV2 {
			t.Fatalf("negotiated unsupported version %d", ver)
		}
		// After a good hello the connection carries v2 frames.
		if _, err := ReadV2(r); err != nil && errors.Is(err, io.ErrUnexpectedEOF) {
			return
		}
	})
}
