package cluster

import (
	"fmt"
	"reflect"
	"sort"

	"honestplayer/internal/wire"
)

// Merge combines per-node assessments of one server into the cluster-wide
// answer.
//
// In the common case — replication has converged and every node assessed
// the same history — all parts are identical and the merge returns the
// most complete node's response verbatim (plus the Merged/MergedFrom
// markers), so a verdict obtained through any node is DeepEqual to the
// owner's own verdict.
//
// When views diverge (replication lag, a peer that missed writes), the
// merge is weighted by how much history each node actually saw:
//
//   - trust values (Trust, TrustLow, TrustHigh) are averaged with each
//     node's local record count as its weight, so a replica that saw 10k
//     records outvotes one that saw 10;
//   - the behaviour test stays conservative: the merged view is Suspicious
//     if ANY contributing node's behaviour test flagged the server. A
//     manipulation pattern visible in one partition of the history must not
//     be averaged away by peers that hold only the clean part — this is
//     what keeps the paper's suspicion semantics meaningful under
//     partitioned ownership;
//   - the verdict detail (suffix table) and bookkeeping fields are taken
//     from the most complete view, preferring a suspicious one so the
//     reported verdict always explains a suspicious merge;
//   - Accept is recomputed from the merged values with the caller's
//     threshold, mirroring core.TwoPhase.Accept.
//
// Parts must be non-empty; parts that hold no records (Records == 0)
// contribute nothing to the weighted values but are listed in MergedFrom.
func Merge(threshold float64, parts []wire.NodeAssessment) (wire.AssessResponse, error) {
	if len(parts) == 0 {
		return wire.AssessResponse{}, fmt.Errorf("cluster: merge of zero assessments")
	}
	// Deterministic merge order: most records first, node ID as tiebreak, so
	// every node computes the identical merged response from the same parts.
	sorted := append([]wire.NodeAssessment(nil), parts...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Records != sorted[j].Records {
			return sorted[i].Records > sorted[j].Records
		}
		return sorted[i].Node < sorted[j].Node
	})
	from := make([]string, len(sorted))
	for i, p := range sorted {
		from[i] = p.Node
	}

	identical := true
	for i := 1; i < len(sorted) && identical; i++ {
		identical = sorted[i].Accept == sorted[0].Accept &&
			reflect.DeepEqual(sorted[i].Assessment, sorted[0].Assessment)
	}
	if identical {
		out := sorted[0].AssessResponse
		out.Merged = true
		out.MergedFrom = from
		return out, nil
	}

	// Divergent views: weight by local history length.
	base := sorted[0]
	var (
		wSum, trust, low, high float64
		suspicious             bool
	)
	for _, p := range sorted {
		if p.Assessment.Suspicious {
			suspicious = true
			// Prefer a suspicious view as the verdict carrier so the suffix
			// table in the answer shows the failing behaviour test.
			if !base.Assessment.Suspicious {
				base = p
			}
		}
		if p.Records <= 0 {
			continue
		}
		w := float64(p.Records)
		wSum += w
		trust += w * p.Assessment.Trust
		low += w * p.Assessment.TrustLow
		high += w * p.Assessment.TrustHigh
	}
	out := base.AssessResponse
	if wSum > 0 {
		out.Assessment.Trust = trust / wSum
		out.Assessment.TrustLow = low / wSum
		out.Assessment.TrustHigh = high / wSum
	}
	out.Assessment.Suspicious = suspicious
	out.Accept = !suspicious && out.Assessment.Trust >= threshold
	out.Merged = true
	out.MergedFrom = from
	return out, nil
}
