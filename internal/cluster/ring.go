// Package cluster partitions server ownership across a static membership
// list with a consistent-hash ring, so a deployment of N trustd nodes
// shares the feedback histories instead of every node holding all of them.
//
// Each server ID hashes onto the ring; the first node encountered clockwise
// owns it, and the next R-1 distinct nodes are its replicas. Every node
// builds the identical ring from the identical membership list, so routing
// needs no coordination: a node receiving a request for a server it does
// not hold forwards it to the owner (internal/repserver), merges per-node
// assessments for reads (Merge), and replicates accepted writes to the
// replica set. Virtual nodes smooth the distribution; adding or removing a
// member moves only the keys adjacent to its points (~K/N of them), which
// is the property that makes membership changes cheap at scale.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the number of virtual points each node contributes to
// the ring. More points smooth the key distribution at the cost of a larger
// (still tiny) sorted array; 64 keeps the max/min node load within ~2x for
// small clusters, which is plenty for ownership routing.
const DefaultVNodes = 64

// point is one virtual node position on the ring.
type point struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is an immutable consistent-hash ring over a set of node IDs. Two
// rings built from the same node set (in any order) and vnode count are
// identical, so every cluster member routes every key the same way.
type Ring struct {
	nodes  []string // sorted, unique
	points []point  // sorted by hash
}

// NewRing builds a ring over the given node IDs with vnodes virtual points
// per node (DefaultVNodes when vnodes <= 0). Node order does not matter;
// duplicates and empty IDs are rejected.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node id")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n)
		}
	}
	r := &Ring{nodes: sorted, points: make([]point, 0, len(sorted)*vnodes)}
	for ni, n := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: pointHash(n, v), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A hash collision between two nodes' points must break the same way
		// on every member: fall back to node order.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// mix64 is a full-avalanche finalizer (the murmur3 fmix64 constants). Raw
// FNV-1a is weak exactly where a ring needs strength: inputs differing only
// in trailing bytes — sequential server IDs like "server-0042", or a node's
// vnode counter — perturb only the low ~50 bits, clumping whole ID ranges
// (and each node's every vnode) into one tiny arc. Mixing the digest spreads
// those deltas over all 64 bits, which is what actually balances ownership.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// pointHash positions one virtual node on the ring.
func pointHash(node string, vnode int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(node))
	_, _ = h.Write([]byte{0, byte(vnode), byte(vnode >> 8), byte(vnode >> 16), byte(vnode >> 24)})
	return mix64(h.Sum64())
}

// keyHash positions a key (a server ID) on the ring. It is deliberately a
// different derivation than pointHash (no vnode suffix) so keys and points
// cannot systematically collide.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// Nodes returns the ring's node IDs, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Size returns the number of nodes on the ring.
func (r *Ring) Size() int { return len(r.nodes) }

// ownerIndex returns the index into r.points of the first point at or after
// the key's hash, wrapping past the highest point back to the first.
func (r *Ring) ownerIndex(key string) int {
	kh := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the node owning key: the first node clockwise from the
// key's ring position.
func (r *Ring) Owner(key string) string {
	return r.nodes[r.points[r.ownerIndex(key)].node]
}

// Replicas returns the n distinct nodes responsible for key, owner first,
// walking clockwise from the key's position. Fewer than n nodes on the ring
// returns them all.
func (r *Ring) Replicas(key string, n int) []string {
	if n < 1 {
		n = 1
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[int]struct{}, n)
	start := r.ownerIndex(key)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, r.nodes[p.node])
	}
	return out
}

// Successors returns the distinct nodes that immediately follow any of
// node's points on the ring — the members that hold replicas of keys node
// owns, and therefore its natural gossip partners. The result excludes node
// itself, is sorted, and contains at most max entries (every other node
// when max <= 0).
func (r *Ring) Successors(node string, max int) []string {
	ni := sort.SearchStrings(r.nodes, node)
	if ni == len(r.nodes) || r.nodes[ni] != node {
		return nil
	}
	succ := make(map[int]struct{})
	for i, p := range r.points {
		if p.node != ni {
			continue
		}
		// Walk forward to the next point of a different node.
		for j := 1; j < len(r.points); j++ {
			q := r.points[(i+j)%len(r.points)]
			if q.node != ni {
				succ[q.node] = struct{}{}
				break
			}
		}
	}
	out := make([]string, 0, len(succ))
	for idx := range succ {
		out = append(out, r.nodes[idx])
	}
	sort.Strings(out)
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}
