// Package ledger provides durable storage for feedback records: a segmented,
// checksummed append-only log that a reputation node replays at startup,
// plus periodic store snapshots so a node boots from snapshot + tail instead
// of a full replay. Records are the system's ground truth — the paper's
// whole mechanism rests on transaction histories — so a production node must
// not lose them on restart, and corruption must surface as a detected,
// truncated prefix rather than silent loss.
//
// On disk a ledger is a directory of size-bounded segment files
// (ledger.000001, ledger.000002, …) and snapshot files (snapshot.0000000001,
// …). The active (highest-numbered) segment receives appends, flushed per
// record; when it exceeds the roll-over threshold it is sealed with a footer
// carrying its record count and CRC32C chain, and a fresh segment starts.
// Sealed segments are immutable and independently verifiable, which is what
// lets boot replay them in parallel. Legacy single-file JSON-lines ledgers
// (the PR-7 format) migrate in place: the file becomes segment 1 of a new
// ledger directory, its content byte-for-byte unchanged, and keeps receiving
// JSON appends until its first roll-over; segments created after that are
// binary (see segment.go for both layouts).
package ledger

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"honestplayer/internal/feedback"
)

// ErrClosed reports use of a closed ledger.
var ErrClosed = errors.New("ledger: closed")

// DefaultSegmentBytes is the default roll-over threshold: a segment that
// grows past this many bytes is sealed and a new one started.
const DefaultSegmentBytes = 64 << 20

// Ledger is a segmented append-only feedback log. It is safe for concurrent
// use.
type Ledger struct {
	mu       sync.Mutex
	dir      string
	segBytes int64

	f        *os.File // active segment
	w        *bufio.Writer
	segIndex uint64
	segSize  int64 // bytes written to the active segment (incl. header)
	segRecs  uint64
	segKind  segKind
	chain    uint32 // crc chain over the active segment's records (binary)

	records     uint64 // intact records ledger-wide (replayed + appended)
	sealedSegs  int
	sealedBytes int64
	rolls       uint64

	// Boot-time corruption accounting (see Stats).
	truncatedSegments int
	truncatedBytes    int64

	// Group commit: concurrent appenders enqueue their records under qmu;
	// the first appender to find no leader active becomes the leader, drains
	// the whole queue, and commits it as one group under l.mu — one encode
	// pass, one Write, one Flush — while the followers wait on their done
	// channels. qmu is never held across I/O and never taken with l.mu held.
	qmu        sync.Mutex
	queue      []*commitWaiter
	committing bool

	// poisoned is the sticky first write/flush failure (guarded by l.mu).
	// After a failed Write or Flush the bufio writer may have pushed an
	// unknown prefix of the group to disk while the in-memory chain no longer
	// matches the durable bytes, so every later append must fail fast rather
	// than chain off an unwritten checksum. Reopening the ledger re-scans the
	// segment and truncates whatever partial group landed.
	poisoned error

	// Group-commit counters (guarded by l.mu).
	groupFlushes     uint64               // leader flushes (each = one Write+Flush)
	coalescedFlushes uint64               // flushes that carried > 1 record
	groupRecords     uint64               // records carried by all flushes
	groupSizes       [groupBuckets]uint64 // power-of-two size histogram

	closed bool
	buf    []byte // append scratch
}

// groupBuckets is the size of the group-commit histogram: bucket i counts
// flushes whose group size was in (2^(i-1), 2^i], so bucket 0 is exactly 1
// record, bucket 1 is 2, bucket 2 is 3–4, … with the last bucket absorbing
// everything larger.
const groupBuckets = 11

// commitWaiter is one appender's stake in a group commit: its records and
// the channel the leader delivers the group's shared result on.
type commitWaiter struct {
	recs []feedback.Feedback
	done chan error
}

// Open opens (creating or migrating if needed) the ledger at path, replays
// every intact record, truncates any torn or corrupt tail, and returns the
// ledger together with the replayed records in log order.
//
// The returned slice materializes the whole log; server boot paths should
// prefer OpenStoreOptions, which streams the replay into a store instead.
func Open(path string) (*Ledger, []feedback.Feedback, error) {
	return OpenContext(context.Background(), path)
}

// OpenContext is Open with a cancellable replay: a large ledger replay
// aborts promptly (with ctx's error) when the context is cancelled, e.g. a
// node told to shut down mid-startup.
func OpenContext(ctx context.Context, path string) (*Ledger, []feedback.Feedback, error) {
	l, err := openLedger(path, DefaultSegmentBytes)
	if err != nil {
		return nil, nil, err
	}
	var recs []feedback.Feedback
	if err := l.replayFrom(ctx, 0, func(batch []feedback.Feedback) error {
		recs = append(recs, batch...)
		return nil
	}); err != nil {
		cerr := l.Close()
		if cerr != nil {
			return nil, nil, errors.Join(err, cerr)
		}
		return nil, nil, err
	}
	return l, recs, nil
}

// openLedger opens the ledger directory at path — migrating a legacy
// single-file ledger in place if that is what path holds — and prepares the
// active segment for appends, truncating its torn tail if any. It does not
// replay sealed segments; replayFrom does.
func openLedger(path string, segBytes int64) (*Ledger, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := migrateToDir(path); err != nil {
		return nil, err
	}
	l := &Ledger{dir: path, segBytes: segBytes}
	segs, err := l.listSegments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return l, l.createSegment(1)
	}
	return l, l.openActive(segs[len(segs)-1])
}

// migrateToDir turns a legacy single-file ledger into a ledger directory
// holding that file as segment 1, creating the directory fresh when path
// does not exist. The migration is crash-resumable: the file is first
// renamed aside to <path>.migrating, so any interrupted step is completed on
// the next open. A missing parent directory fails, as creating the original
// single file would have.
func migrateToDir(path string) error {
	aside := path + ".migrating"
	if fi, err := os.Stat(path); err == nil && !fi.IsDir() {
		if _, err := os.Stat(aside); err == nil {
			return fmt.Errorf("ledger: migration of %s already in progress (%s exists)", path, aside)
		}
		if err := os.Rename(path, aside); err != nil {
			return fmt.Errorf("ledger: migrate %s: %w", path, err)
		}
	}
	if err := os.Mkdir(path, 0o755); err != nil && !errors.Is(err, os.ErrExist) {
		return fmt.Errorf("ledger: open %s: %w", path, err)
	}
	if _, err := os.Stat(aside); err == nil {
		seg1 := filepath.Join(path, segmentName(1))
		if _, err := os.Stat(seg1); err == nil {
			// A previous crash left both; the directory already has a segment
			// 1, so the aside file is stale. Refuse to guess.
			return fmt.Errorf("ledger: migration of %s conflicts with existing %s", path, seg1)
		}
		if err := os.Rename(aside, seg1); err != nil {
			return fmt.Errorf("ledger: migrate %s: %w", path, err)
		}
		syncDir(path)
	}
	return nil
}

// syncDir best-effort fsyncs a directory so renames within it are durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// listSegments returns the segment indexes present, sorted ascending.
func (l *Ledger) listSegments() ([]uint64, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("ledger: list %s: %w", l.dir, err)
	}
	var out []uint64
	for _, e := range ents {
		if idx, ok := parseSegmentName(e.Name()); ok && !e.IsDir() {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (l *Ledger) segPath(idx uint64) string {
	return filepath.Join(l.dir, segmentName(idx))
}

// createSegment creates a fresh binary segment and makes it active.
func (l *Ledger) createSegment(idx uint64) error {
	f, err := os.OpenFile(l.segPath(idx), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: create segment: %w", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		cerr := f.Close()
		return errors.Join(fmt.Errorf("ledger: segment header: %w", err), cerr)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segIndex = idx
	l.segSize = int64(len(segMagic))
	l.segRecs = 0
	l.segKind = segBinary
	l.chain = 0
	return nil
}

// openActive prepares the highest-numbered segment for appends: it scans the
// file structurally (no record emission), truncates anything past the intact
// prefix, and seeks to the end. A fully-sealed highest segment — the
// kill-during-roll-over case — is left untouched and a fresh segment is
// created after it.
func (l *Ledger) openActive(idx uint64) error {
	path := l.segPath(idx)
	data, err := readSegmentFile(path)
	if err != nil {
		return err
	}
	sc, _ := scanSegment(data, nil) // nil emit: scan never fails
	if sc.sealed {
		// Kill-during-roll-over: the segment sealed but its successor never
		// landed. Leave it for replayFrom to consume and start the next one.
		return l.createSegment(idx + 1)
	}
	if sc.truncated > 0 {
		l.truncatedSegments++
		l.truncatedBytes += sc.truncated
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: open segment %s: %w", path, err)
	}
	intact := sc.intact
	kind := sc.kind
	if kind == segBinary && intact < int64(len(segMagic)) {
		// Torn or absent header: rewrite the segment from scratch.
		if err := f.Truncate(0); err != nil {
			cerr := f.Close()
			return errors.Join(fmt.Errorf("ledger: truncate %s: %w", path, err), cerr)
		}
		if _, err := f.Write(segMagic[:]); err != nil {
			cerr := f.Close()
			return errors.Join(fmt.Errorf("ledger: segment header: %w", err), cerr)
		}
		intact = int64(len(segMagic))
		sc.records, sc.chain = 0, 0
	} else {
		if err := f.Truncate(intact); err != nil {
			cerr := f.Close()
			return errors.Join(fmt.Errorf("ledger: truncate %s: %w", path, err), cerr)
		}
		if _, err := f.Seek(intact, io.SeekStart); err != nil {
			cerr := f.Close()
			return errors.Join(fmt.Errorf("ledger: seek %s: %w", path, err), cerr)
		}
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segIndex = idx
	l.segSize = intact
	l.segRecs = sc.records
	l.segKind = kind
	l.chain = sc.chain
	return nil
}

// Append durably appends one record, rolling the active segment over when it
// exceeds the configured threshold. Concurrent appenders group-commit: their
// records are coalesced into one encode + one Write + one Flush issued by a
// single leader, so N concurrent appends cost one flush syscall instead of N.
func (l *Ledger) Append(rec feedback.Feedback) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	return l.commit([]feedback.Feedback{rec})
}

// AppendBatch durably appends all records as one group (plus whatever
// concurrent appenders joined the same commit). All-or-nothing: every record
// is validated before anything is queued, and the group's single Write+Flush
// either persists the whole batch or fails it whole.
func (l *Ledger) AppendBatch(recs []feedback.Feedback) error {
	if len(recs) == 0 {
		return nil
	}
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
	}
	return l.commit(recs)
}

// commit enqueues recs for the group committer and waits for the result.
// The first appender to arrive while no leader is active becomes the leader:
// it repeatedly drains the whole queue and commits it as one group, handing
// each waiter the group's shared error, until the queue is empty. Everyone
// else just waits — their records ride the leader's flush.
func (l *Ledger) commit(recs []feedback.Feedback) error {
	w := &commitWaiter{recs: recs, done: make(chan error, 1)}
	l.qmu.Lock()
	l.queue = append(l.queue, w)
	if l.committing {
		l.qmu.Unlock()
		return <-w.done
	}
	l.committing = true
	for len(l.queue) > 0 {
		group := l.queue
		l.queue = nil
		l.qmu.Unlock()
		err := l.commitGroup(group)
		for _, cw := range group {
			cw.done <- err
		}
		l.qmu.Lock()
	}
	l.committing = false
	l.qmu.Unlock()
	return <-w.done
}

// commitGroup encodes every queued record into one buffer — one chain pass,
// computed locally so a failed write never advances the in-memory chain —
// and issues a single Write+Flush for the whole group. A Write or Flush
// failure poisons the ledger (see the poisoned field). Encode failures
// cannot poison: nothing has been written yet, so the group just fails.
func (l *Ledger) commitGroup(group []*commitWaiter) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	var (
		n     uint64
		chain = l.chain
		err   error
	)
	l.buf = l.buf[:0]
	for _, w := range group {
		for _, rec := range w.recs {
			if l.segKind == segJSON {
				l.buf, err = appendJSONLine(l.buf, rec)
			} else {
				l.buf, chain, err = appendRecord(l.buf, rec, chain)
			}
			if err != nil {
				return fmt.Errorf("ledger: encode: %w", err)
			}
			n++
		}
	}
	if n == 0 {
		return nil
	}
	if _, err := l.w.Write(l.buf); err != nil {
		l.poisoned = fmt.Errorf("ledger: poisoned by append error: %w", err)
		return fmt.Errorf("ledger: append: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		l.poisoned = fmt.Errorf("ledger: poisoned by flush error: %w", err)
		return fmt.Errorf("ledger: flush: %w", err)
	}
	l.chain = chain
	l.segSize += int64(len(l.buf))
	l.segRecs += n
	l.records += n
	l.groupFlushes++
	if n > 1 {
		l.coalescedFlushes++
	}
	l.groupRecords += n
	l.groupSizes[groupBucket(n)]++
	if l.segSize >= l.segBytes {
		if err := l.rollOverLocked(); err != nil {
			// The group's records flushed, but the seal is in an unknown
			// state; treat it like any other failed write.
			l.poisoned = fmt.Errorf("ledger: poisoned by roll-over error: %w", err)
			return err
		}
	}
	return nil
}

// groupBucket maps a group size to its histogram bucket: ceil(log2(n)),
// capped at the last bucket.
func groupBucket(n uint64) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b >= groupBuckets {
		b = groupBuckets - 1
	}
	return b
}

// GroupCommitStats is a point-in-time view of the group-commit counters.
// The quantiles are bucketed approximations: each group size is attributed
// to its power-of-two bucket and the quantile reports the bucket's upper
// bound, so P50 = 4 means half of all flushes carried at most 4 records.
type GroupCommitStats struct {
	// Flushes is the number of leader flushes (one Write+Flush each).
	Flushes uint64 `json:"flushes"`
	// Coalesced is the number of flushes that carried more than one record
	// — the count of flush syscalls saved by grouping is Records - Flushes.
	Coalesced uint64 `json:"coalesced"`
	// Records is the total records carried by all flushes.
	Records uint64 `json:"records"`
	// SizeP50 and SizeP99 are bucketed group-size quantiles.
	SizeP50 uint64 `json:"size_p50"`
	SizeP99 uint64 `json:"size_p99"`
}

// GroupCommit reports the group-commit counters.
func (l *Ledger) GroupCommit() GroupCommitStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := GroupCommitStats{
		Flushes:   l.groupFlushes,
		Coalesced: l.coalescedFlushes,
		Records:   l.groupRecords,
	}
	s.SizeP50 = groupQuantile(&l.groupSizes, l.groupFlushes, 50)
	s.SizeP99 = groupQuantile(&l.groupSizes, l.groupFlushes, 99)
	return s
}

// groupQuantile returns the upper bound (2^bucket) of the first histogram
// bucket at which the cumulative flush count reaches pct percent of total.
func groupQuantile(buckets *[groupBuckets]uint64, total uint64, pct uint64) uint64 {
	if total == 0 {
		return 0
	}
	need := (total*pct + 99) / 100
	var cum uint64
	for i, c := range buckets {
		cum += c
		if cum >= need {
			return 1 << i
		}
	}
	return 1 << (groupBuckets - 1)
}

// rollOverLocked seals the active segment — footer, fsync, close — and
// starts the next one. A legacy JSON segment has no footer slot; it is
// sealed implicitly by no longer being the highest-numbered segment, which
// is also what upgrades a migrated ledger to the binary format: every
// segment after the roll-over is binary. Callers hold l.mu.
func (l *Ledger) rollOverLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("ledger: roll-over flush: %w", err)
	}
	if l.segKind == segBinary {
		footer := appendFooter(nil, l.segRecs, uint64(l.segSize)-uint64(len(segMagic)), l.chain)
		if _, err := l.f.Write(footer); err != nil {
			return fmt.Errorf("ledger: seal segment %d: %w", l.segIndex, err)
		}
		l.segSize += int64(len(footer))
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ledger: seal sync: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("ledger: seal close: %w", err)
	}
	l.sealedSegs++
	l.sealedBytes += l.segSize
	l.rolls++
	if err := l.createSegment(l.segIndex + 1); err != nil {
		return err
	}
	syncDir(l.dir)
	return nil
}

// appendJSONLine appends the legacy JSON-lines encoding of rec.
func appendJSONLine(buf []byte, rec feedback.Feedback) ([]byte, error) {
	raw, err := encodeJSONRecord(rec)
	if err != nil {
		return buf, err
	}
	buf = append(buf, raw...)
	return append(buf, '\n'), nil
}

// Sync flushes buffered data and fsyncs the active segment.
func (l *Ledger) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	if err := l.w.Flush(); err != nil {
		l.poisoned = fmt.Errorf("ledger: poisoned by flush error: %w", err)
		return fmt.Errorf("ledger: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ledger: sync: %w", err)
	}
	return nil
}

// Close flushes and closes the active segment. It is idempotent.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	ferr := l.w.Flush()
	serr := l.f.Sync()
	cerr := l.f.Close()
	return errors.Join(ferr, serr, cerr)
}

// sealForSnapshot flushes buffered appends, seals the active segment if it
// holds any records, and reports the index of the now-empty active segment
// plus the total intact record count. Aligning the snapshot boundary to a
// segment boundary means tail replay after a snapshot boot starts exactly
// at `segIndex` and never re-decodes snapshotted history. The snapshot
// writer captures this BEFORE scanning store shards: any record accepted
// afterwards lands in segment >= segIndex, which tail replay covers (the
// store's content-hash dedup makes the small scan-window overlap harmless).
func (l *Ledger) sealForSnapshot() (segIndex uint64, records uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, ErrClosed
	}
	if l.poisoned != nil {
		return 0, 0, l.poisoned
	}
	if err := l.w.Flush(); err != nil {
		l.poisoned = fmt.Errorf("ledger: poisoned by flush error: %w", err)
		return 0, 0, fmt.Errorf("ledger: flush: %w", err)
	}
	if l.segRecs > 0 {
		if err := l.rollOverLocked(); err != nil {
			return 0, 0, err
		}
	}
	return l.segIndex, l.records, nil
}
