package experiment

import (
	"errors"
	"fmt"
	"strconv"

	"honestplayer/internal/attack"
	"honestplayer/internal/behavior"
	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/sim"
	"honestplayer/internal/stats"
	"honestplayer/internal/trust"
)

// CollusionConfig parameterises the collusion experiments of Figs. 5 and 6:
// 100 potential clients of which 5 collude with the attacker; the attacker
// preps its reputation purely through colluders, then wants GoalBad bad
// transactions. The y axis is the number of genuinely good services the
// attacker is forced to provide to non-colluders.
type CollusionConfig struct {
	// PrepSizes is the x axis; nil means {100 … 800}.
	PrepSizes []int
	// GoalBad is M; zero means 20.
	GoalBad int
	// PrepP is the target preparation reputation; zero means 0.95.
	PrepP float64
	// Threshold is the clients' trust threshold; zero means 0.9.
	Threshold float64
	// Clients is the total client pool; zero means 100.
	Clients int
	// Colluders is the number of colluders within the pool; zero means 5.
	Colluders int
	// Trials averages over seeded runs; zero means 3.
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// CalibrationReplicates tunes the Monte-Carlo ε estimation; zero means
	// 500.
	CalibrationReplicates int
}

func (c CollusionConfig) withDefaults() CollusionConfig {
	if c.PrepSizes == nil {
		c.PrepSizes = defaultPrepSizes()
	}
	if c.GoalBad == 0 {
		c.GoalBad = DefaultGoalBad
	}
	if c.PrepP == 0 {
		c.PrepP = DefaultPrepP
	}
	if c.Threshold == 0 {
		c.Threshold = DefaultThreshold
	}
	if c.Clients == 0 {
		c.Clients = 100
	}
	if c.Colluders == 0 {
		c.Colluders = 5
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	return c
}

// RunFig5 regenerates Fig. 5: cost of attackers with collusion under the
// average trust function.
func RunFig5(cfg CollusionConfig) (*Result, error) {
	return runCollusionFigure("fig5", "Cost of attackers with collusion: average function",
		trust.Average{}, cfg)
}

// RunFig6 regenerates Fig. 6: cost of attackers with collusion under the
// weighted trust function (λ = 0.5).
func RunFig6(cfg CollusionConfig) (*Result, error) {
	w, err := trust.NewWeighted(DefaultLambda)
	if err != nil {
		return nil, err
	}
	return runCollusionFigure("fig6", "Cost of attackers with collusion: weighted function",
		w, cfg)
}

func runCollusionFigure(id, title string, fn trust.Func, cfg CollusionConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	cal := newCalibrator(cfg.Seed+2000, cfg.CalibrationReplicates)
	bcfg := behavior.Config{WindowSize: DefaultWindowSize, Calibrator: cal}

	singleCol, err := behavior.NewCollusion(bcfg)
	if err != nil {
		return nil, err
	}
	multiCol, err := behavior.NewCollusionMulti(bcfg)
	if err != nil {
		return nil, err
	}
	schemes := []struct {
		name   string
		tester behavior.Tester
	}{
		{fn.Name(), nil},
		{"scheme1+" + fn.Name(), singleCol},
		{"scheme2+" + fn.Name(), multiCol},
	}

	res := &Result{
		ID:     id,
		Title:  title,
		XLabel: "initial history size",
		YLabel: fmt.Sprintf("good transactions to non-colluders to launch %d attacks", cfg.GoalBad),
	}
	for _, sch := range schemes {
		assessor, err := core.NewTwoPhase(sch.tester, fn)
		if err != nil {
			return nil, err
		}
		series := Series{Name: sch.name}
		for _, prep := range cfg.PrepSizes {
			mean, note, err := meanCollusionCost(assessor, cfg, prep)
			if err != nil {
				return nil, fmt.Errorf("%s prep=%d: %w", sch.name, prep, err)
			}
			if note != "" {
				res.Notes = append(res.Notes, note)
			}
			series.Points = append(series.Points, Point{X: float64(prep), Y: mean})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

func meanCollusionCost(assessor *core.TwoPhase, cfg CollusionConfig, prep int) (float64, string, error) {
	colluders := make([]feedback.EntityID, cfg.Colluders)
	for i := range colluders {
		colluders[i] = feedback.EntityID("colluder-" + strconv.Itoa(i))
	}
	total := 0
	note := ""
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed ^ (uint64(prep)<<20 + uint64(trial) + 0xabcd)
		rng := stats.NewRNG(seed)
		h, err := attack.PrepareByColluders("attacker", prep, cfg.PrepP, colluders, rng)
		if err != nil {
			return 0, "", err
		}
		pop, err := sim.NewPopulation("client", cfg.Clients-cfg.Colluders, 0, 0, 0, rng.Split())
		if err != nil {
			return 0, "", err
		}
		c := &attack.Colluding{
			Assessor:  assessor,
			Threshold: cfg.Threshold,
			GoalBad:   cfg.GoalBad,
			Colluders: colluders,
			MaxSteps:  500 * cfg.GoalBad,
		}
		cost, err := c.Run(h, pop, rng)
		switch {
		case errors.Is(err, attack.ErrGoalUnreachable):
			note = fmt.Sprintf("%s: goal unreachable within budget at prep=%d (cost is a lower bound)",
				assessor.Name(), prep)
		case err != nil:
			return 0, "", err
		}
		total += cost.Good
	}
	return float64(total) / float64(cfg.Trials), note, nil
}
