package trust

import (
	"testing"
	"time"

	"honestplayer/internal/feedback"
	"honestplayer/internal/stats"
)

func benchHistory(b *testing.B, n int) *feedback.History {
	b.Helper()
	rng := stats.NewRNG(1)
	h := feedback.NewHistory("s")
	for i := 0; i < n; i++ {
		if err := h.AppendOutcome("c", rng.Bernoulli(0.9), time.Unix(int64(i), 0)); err != nil {
			b.Fatal(err)
		}
	}
	return h
}

func benchFuncs(b *testing.B) []TrackerFunc {
	b.Helper()
	w, err := NewWeighted(0.5)
	if err != nil {
		b.Fatal(err)
	}
	d, err := NewTimeDecay(0.95)
	if err != nil {
		b.Fatal(err)
	}
	sw, err := NewSlidingWindow(100)
	if err != nil {
		b.Fatal(err)
	}
	return []TrackerFunc{Average{}, w, Beta{}, d, sw}
}

func BenchmarkEvaluate(b *testing.B) {
	h := benchHistory(b, 10000)
	for _, fn := range benchFuncs(b) {
		b.Run(fn.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fn.Evaluate(h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTrackerUpdate(b *testing.B) {
	for _, fn := range benchFuncs(b) {
		b.Run(fn.Name(), func(b *testing.B) {
			tr := fn.NewTracker()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.Update(i%10 != 0)
			}
		})
	}
}
