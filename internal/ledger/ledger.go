// Package ledger provides durable storage for feedback records: an
// append-only JSON-lines file that a reputation node replays at startup.
// Records are the system's ground truth — the paper's whole mechanism rests
// on transaction histories — so a production node must not lose them on
// restart.
//
// The format is one wire-compatible JSON record per line. Appends are
// flushed per record (a reputation record is small and rare relative to
// fsync cost at these scales); a torn final line — the crash case — is
// detected and ignored during replay, and the file is truncated back to the
// last complete record before new appends.
package ledger

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"honestplayer/internal/feedback"
	"honestplayer/internal/store"
)

// ErrClosed reports use of a closed ledger.
var ErrClosed = errors.New("ledger: closed")

// Ledger is an append-only feedback log. It is safe for concurrent use.
type Ledger struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	closed bool
}

// Open opens (creating if needed) the ledger at path, replays every intact
// record, truncates any torn trailing line, and returns the ledger together
// with the replayed records in file order.
func Open(path string) (*Ledger, []feedback.Feedback, error) {
	return OpenContext(context.Background(), path)
}

// OpenContext is Open with a cancellable replay: a large ledger replay
// aborts promptly (with ctx's error) when the context is cancelled, e.g. a
// node told to shut down mid-startup.
func OpenContext(ctx context.Context, path string) (*Ledger, []feedback.Feedback, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("ledger: open %s: %w", path, err)
	}
	recs, intact, err := replay(ctx, f)
	if err != nil {
		cerr := f.Close()
		if cerr != nil {
			return nil, nil, errors.Join(err, cerr)
		}
		return nil, nil, err
	}
	if err := f.Truncate(intact); err != nil {
		cerr := f.Close()
		if cerr != nil {
			return nil, nil, errors.Join(err, cerr)
		}
		return nil, nil, fmt.Errorf("ledger: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(intact, io.SeekStart); err != nil {
		cerr := f.Close()
		if cerr != nil {
			return nil, nil, errors.Join(err, cerr)
		}
		return nil, nil, fmt.Errorf("ledger: seek %s: %w", path, err)
	}
	return &Ledger{f: f, w: bufio.NewWriter(f)}, recs, nil
}

// replay reads records until EOF or the first torn/corrupt line, returning
// the records and the byte offset of the end of the last intact record.
// Cancellation is checked every replayCheckEvery records so a multi-GB
// replay stays responsive to shutdown without a per-line ctx cost.
func replay(ctx context.Context, f *os.File) ([]feedback.Feedback, int64, error) {
	const replayCheckEvery = 1024
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("ledger: seek: %w", err)
	}
	var (
		recs   []feedback.Feedback
		intact int64
	)
	r := bufio.NewReader(f)
	for {
		if len(recs)%replayCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, fmt.Errorf("ledger: replay: %w", err)
			}
		}
		line, err := r.ReadBytes('\n')
		if err != nil {
			if errors.Is(err, io.EOF) {
				// A partial line without '\n' is a torn append: ignore it.
				return recs, intact, nil
			}
			return nil, 0, fmt.Errorf("ledger: read: %w", err)
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			intact += int64(len(line))
			continue
		}
		var rec feedback.Feedback
		if err := json.Unmarshal(trimmed, &rec); err != nil {
			// Corrupt interior line: stop replay here; everything after is
			// suspect and will be truncated.
			return recs, intact, nil
		}
		if err := rec.Validate(); err != nil {
			return recs, intact, nil
		}
		recs = append(recs, rec)
		intact += int64(len(line))
	}
}

// Append durably appends one record.
func (l *Ledger) Append(rec feedback.Feedback) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("ledger: marshal: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.w.Write(raw); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	if err := l.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("ledger: flush: %w", err)
	}
	return nil
}

// Sync flushes buffered data and fsyncs the file.
func (l *Ledger) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("ledger: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ledger: sync: %w", err)
	}
	return nil
}

// Close flushes and closes the file. It is idempotent.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	ferr := l.w.Flush()
	serr := l.f.Sync()
	cerr := l.f.Close()
	return errors.Join(ferr, serr, cerr)
}

// PersistentStore couples an in-memory feedback store with a ledger: every
// newly stored record is appended to the ledger, and opening replays the
// ledger into the store.
type PersistentStore struct {
	store  *store.Store
	ledger *Ledger
}

// OpenStore opens the ledger at path and builds the in-memory store from
// it.
func OpenStore(path string) (*PersistentStore, error) {
	return OpenStoreSharded(path, store.DefaultShards)
}

// OpenStoreSharded is OpenStore with an explicit shard count for the
// in-memory store.
func OpenStoreSharded(path string, shards int) (*PersistentStore, error) {
	return OpenStoreShardedContext(context.Background(), path, shards)
}

// OpenStoreShardedContext is OpenStoreSharded with a cancellable replay.
func OpenStoreShardedContext(ctx context.Context, path string, shards int) (*PersistentStore, error) {
	l, recs, err := OpenContext(ctx, path)
	if err != nil {
		return nil, err
	}
	st := store.NewSharded(shards)
	if _, err := st.AddAll(recs); err != nil {
		cerr := l.Close()
		if cerr != nil {
			return nil, errors.Join(err, cerr)
		}
		return nil, fmt.Errorf("ledger: replay into store: %w", err)
	}
	return &PersistentStore{store: st, ledger: l}, nil
}

// Store returns the in-memory store (for read paths and for wiring into
// repserver; writes that should be durable must go through Add).
func (ps *PersistentStore) Store() *store.Store { return ps.store }

// Add stores the record and, when it is new, appends it to the ledger.
func (ps *PersistentStore) Add(rec feedback.Feedback) (bool, error) {
	stored, err := ps.store.Add(rec)
	if err != nil || !stored {
		return stored, err
	}
	if err := ps.ledger.Append(rec); err != nil {
		return true, fmt.Errorf("stored in memory but not persisted: %w", err)
	}
	return true, nil
}

// Close closes the underlying ledger.
func (ps *PersistentStore) Close() error { return ps.ledger.Close() }
