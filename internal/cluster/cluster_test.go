package cluster

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"honestplayer/internal/core"
	"honestplayer/internal/feedback"
	"honestplayer/internal/wire"
)

func testMembership() []Node {
	return []Node{
		{ID: "a", Addr: "127.0.0.1:7700", Gossip: "127.0.0.1:7800"},
		{ID: "b", Addr: "127.0.0.1:7710", Gossip: "127.0.0.1:7810"},
		{ID: "c", Addr: "127.0.0.1:7720"},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Self: "a"}); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := New(Config{Self: "zz", Nodes: testMembership()}); err == nil {
		t.Fatal("self outside membership accepted")
	}
	dup := append(testMembership(), Node{ID: "a", Addr: "x:1"})
	if _, err := New(Config{Self: "a", Nodes: dup}); err == nil {
		t.Fatal("duplicate node id accepted")
	}
	if _, err := New(Config{Self: "a", Nodes: []Node{{ID: "a"}}}); err == nil {
		t.Fatal("node without addr accepted")
	}
	// Replicas clamp to the membership size.
	cl, err := New(Config{Self: "a", Nodes: testMembership(), Replicas: 99})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Replicas() != 3 {
		t.Fatalf("Replicas() = %d; want clamp to 3", cl.Replicas())
	}
}

// TestClusterAgreement: every member, instantiated with its own Self, routes
// every key identically — and the Owns predicate holds on exactly the
// replica-set members.
func TestClusterAgreement(t *testing.T) {
	members := testMembership()
	views := make(map[string]*Cluster, len(members))
	for _, m := range members {
		cl, err := New(Config{Self: m.ID, Nodes: members, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		views[m.ID] = cl
	}
	for i := 0; i < 300; i++ {
		srv := feedback.EntityID(fmt.Sprintf("server-%03d", i))
		owner := views["a"].Owner(srv)
		set := views["a"].ReplicaSet(srv)
		if set[0] != owner {
			t.Fatalf("ReplicaSet(%q)[0] = %q; want owner %q", srv, set[0], owner)
		}
		inSet := make(map[string]bool, len(set))
		for _, id := range set {
			inSet[id] = true
		}
		for id, cl := range views {
			if got := cl.Owner(srv); got != owner {
				t.Fatalf("node %s routes %q to %q; node a routes to %q", id, srv, got, owner)
			}
			if got, want := cl.Owns(srv), inSet[id]; got != want {
				t.Fatalf("node %s Owns(%q) = %v; replica set %v", id, srv, got, set)
			}
			if got, want := cl.IsOwner(srv), id == owner; got != want {
				t.Fatalf("node %s IsOwner(%q) = %v; owner is %q", id, srv, got, owner)
			}
		}
	}
}

func TestGossipPeersSkipsNonGossipers(t *testing.T) {
	cl, err := New(Config{Self: "c", Nodes: testMembership(), Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range cl.GossipPeers() {
		if addr != "127.0.0.1:7800" && addr != "127.0.0.1:7810" {
			t.Fatalf("GossipPeers() returned %q, not a configured gossip listener", addr)
		}
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	cl, err := New(Config{Self: "solo", Nodes: []Node{{ID: "solo", Addr: "127.0.0.1:7700"}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		srv := feedback.EntityID(fmt.Sprintf("s%d", i))
		if !cl.Owns(srv) || !cl.IsOwner(srv) {
			t.Fatalf("single-node cluster does not own %q", srv)
		}
	}
}

func TestParseNodes(t *testing.T) {
	nodes, err := ParseNodes("b=10.0.0.2:7700, a=10.0.0.1:7700~10.0.0.1:7800 ,c=10.0.0.3:7700")
	if err != nil {
		t.Fatal(err)
	}
	want := []Node{
		{ID: "a", Addr: "10.0.0.1:7700", Gossip: "10.0.0.1:7800"},
		{ID: "b", Addr: "10.0.0.2:7700"},
		{ID: "c", Addr: "10.0.0.3:7700"},
	}
	if !reflect.DeepEqual(nodes, want) {
		t.Fatalf("ParseNodes = %+v; want %+v", nodes, want)
	}
	for _, bad := range []string{"", "a", "=addr", "a=", "a=~g"} {
		if _, err := ParseNodes(bad); err == nil {
			t.Fatalf("ParseNodes(%q) accepted", bad)
		}
	}
}

func part(node string, records int, trust float64, suspicious, accept bool) wire.NodeAssessment {
	return wire.NodeAssessment{
		Node:    node,
		Records: records,
		AssessResponse: wire.AssessResponse{
			Assessment: core.Assessment{
				Server: "s1", Trust: trust, TrustLow: trust - 0.05, TrustHigh: trust + 0.05,
				Suspicious: suspicious, TrustFunc: "average",
			},
			Accept: accept,
		},
	}
}

func TestMergeEmpty(t *testing.T) {
	if _, err := Merge(0.9, nil); err == nil {
		t.Fatal("merge of zero parts accepted")
	}
}

// TestMergeIdentical: converged replicas merge to the first part verbatim —
// the bit-identical guarantee the e2e differential test relies on.
func TestMergeIdentical(t *testing.T) {
	parts := []wire.NodeAssessment{
		part("b", 100, 0.95, false, true),
		part("a", 100, 0.95, false, true),
	}
	got, err := Merge(0.9, parts)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Merged {
		t.Fatal("Merged marker missing")
	}
	if !reflect.DeepEqual(got.MergedFrom, []string{"a", "b"}) {
		t.Fatalf("MergedFrom = %v; want sorted [a b]", got.MergedFrom)
	}
	want := parts[0].AssessResponse
	want.Merged, want.MergedFrom = true, got.MergedFrom
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("identical merge not verbatim:\n got %+v\nwant %+v", got, want)
	}
}

// TestMergeWeighted: divergent views average trust by record count, so the
// node that saw 9x the history dominates the merged value.
func TestMergeWeighted(t *testing.T) {
	parts := []wire.NodeAssessment{
		part("a", 900, 0.90, false, true),
		part("b", 100, 0.50, false, false),
	}
	got, err := Merge(0.8, parts)
	if err != nil {
		t.Fatal(err)
	}
	wantTrust := (900*0.90 + 100*0.50) / 1000
	if math.Abs(got.Assessment.Trust-wantTrust) > 1e-12 {
		t.Fatalf("merged trust = %v; want %v", got.Assessment.Trust, wantTrust)
	}
	if !got.Accept {
		t.Fatalf("merged trust %v >= threshold 0.8 but Accept=false", got.Assessment.Trust)
	}
	if strict, err := Merge(0.99, parts); err != nil || strict.Accept {
		t.Fatalf("merged trust %v under threshold 0.99 but Accept=true (err=%v)", wantTrust, err)
	}
}

// TestMergeSuspicionIsSticky: one suspicious view makes the merged view
// suspicious and rejected regardless of the trust average — partitioned
// replicas must not average away a manipulation pattern.
func TestMergeSuspicionIsSticky(t *testing.T) {
	parts := []wire.NodeAssessment{
		part("a", 10000, 0.99, false, true),
		part("b", 10, 0.0, true, false),
	}
	got, err := Merge(0.5, parts)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Assessment.Suspicious {
		t.Fatal("suspicion averaged away by the larger clean view")
	}
	if got.Accept {
		t.Fatal("suspicious merge accepted")
	}
	// The verdict carrier prefers the suspicious view so the response
	// explains the rejection.
	if got.Assessment.Server != "s1" {
		t.Fatalf("verdict carrier lost the assessment payload: %+v", got.Assessment)
	}
}

// TestMergeZeroRecordParts: empty replicas appear in MergedFrom but carry no
// weight.
func TestMergeZeroRecordParts(t *testing.T) {
	parts := []wire.NodeAssessment{
		part("a", 500, 0.9, false, true),
		part("b", 0, 0.0, false, false),
	}
	got, err := Merge(0.8, parts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Assessment.Trust-0.9) > 1e-12 {
		t.Fatalf("zero-record part changed the trust: %v", got.Assessment.Trust)
	}
	if !reflect.DeepEqual(got.MergedFrom, []string{"a", "b"}) {
		t.Fatalf("MergedFrom = %v; want [a b]", got.MergedFrom)
	}
}
